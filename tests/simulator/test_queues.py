"""Tests for DropTail, RED, level-priority, and channel queues."""

import random

import pytest

from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import (
    DropTailQueue,
    LevelPriorityQueue,
    PriorityChannelQueue,
    REDQueue,
)


def make_packet(size=1500, ptype=PacketType.REGULAR, priority=0, src="s", dst="d"):
    return Packet(src=src, dst=dst, size_bytes=size, ptype=ptype, priority=priority)


# ---------------------------------------------------------------------------
# DropTail
# ---------------------------------------------------------------------------

def test_droptail_fifo_order():
    queue = DropTailQueue(capacity_bytes=10_000)
    packets = [make_packet() for _ in range(3)]
    for packet in packets:
        assert queue.enqueue(packet)
    assert [queue.dequeue().uid for _ in range(3)] == [p.uid for p in packets]


def test_droptail_drops_when_full():
    queue = DropTailQueue(capacity_bytes=3_000)
    assert queue.enqueue(make_packet())
    assert queue.enqueue(make_packet())
    assert not queue.enqueue(make_packet())
    assert queue.stats.dropped == 1
    assert queue.stats.enqueued == 2


def test_droptail_byte_length_tracks_contents():
    queue = DropTailQueue(capacity_bytes=10_000)
    queue.enqueue(make_packet(size=500))
    queue.enqueue(make_packet(size=700))
    assert queue.byte_length == 1200
    queue.dequeue()
    assert queue.byte_length == 700


def test_droptail_dequeue_empty_returns_none():
    queue = DropTailQueue(capacity_bytes=1_000)
    assert queue.dequeue() is None


def test_droptail_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(capacity_bytes=0)


def test_droptail_drop_callback_invoked():
    dropped = []
    queue = DropTailQueue(capacity_bytes=1_500)
    queue.drop_callback = lambda pkt, reason: dropped.append((pkt, reason))
    queue.enqueue(make_packet())
    queue.enqueue(make_packet())
    assert len(dropped) == 1
    assert dropped[0][1] == "tail"


# ---------------------------------------------------------------------------
# RED
# ---------------------------------------------------------------------------

def test_red_accepts_when_queue_short():
    queue = REDQueue(capacity_bytes=50 * 1500)
    for _ in range(5):
        assert queue.enqueue(make_packet())
    assert queue.stats.dropped == 0


def test_red_average_queue_tracks_occupancy():
    queue = REDQueue(capacity_bytes=50 * 1500, wq=0.5)
    for _ in range(10):
        queue.enqueue(make_packet())
    assert queue.avg_queue > 0


def test_red_drops_probabilistically_between_thresholds():
    rng = random.Random(1)
    queue = REDQueue(capacity_bytes=20 * 1500, wq=1.0, max_p=0.5, rng=rng)
    drops = 0
    for _ in range(200):
        if not queue.enqueue(make_packet()):
            drops += 1
        if len(queue) > 12:
            queue.dequeue()
    assert drops > 0


def test_red_congested_flag_reflects_average():
    queue = REDQueue(capacity_bytes=10 * 1500, wq=1.0)
    assert not queue.congested
    for _ in range(8):
        queue.enqueue(make_packet())
    assert queue.congested


def test_red_never_exceeds_physical_capacity():
    queue = REDQueue(capacity_bytes=5 * 1500, wq=0.0)  # wq=0 disables early drop
    for _ in range(10):
        queue.enqueue(make_packet())
    assert queue.byte_length <= 5 * 1500


def test_red_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        REDQueue(capacity_bytes=1000, minthresh_fraction=0.8, maxthresh_fraction=0.5)


def test_red_default_rngs_are_decorrelated():
    # Regression: two independently constructed RED queues used to share a
    # hard-coded Random(0) seed and drew identical drop decisions.
    a = REDQueue(capacity_bytes=64 * 1500)
    b = REDQueue(capacity_bytes=64 * 1500)
    assert [a.rng.random() for _ in range(16)] != [b.rng.random() for _ in range(16)]


def test_red_explicit_seed_is_reproducible():
    draws = lambda q: [q.rng.random() for _ in range(16)]
    assert draws(REDQueue(capacity_bytes=1500, seed=7)) == \
        draws(REDQueue(capacity_bytes=1500, seed=7))
    assert draws(REDQueue(capacity_bytes=1500, seed=7)) != \
        draws(REDQueue(capacity_bytes=1500, seed=8))


# ---------------------------------------------------------------------------
# LevelPriorityQueue (request channel, §4.2)
# ---------------------------------------------------------------------------

def test_level_priority_serves_higher_levels_first():
    queue = LevelPriorityQueue(capacity_bytes=10_000)
    low = make_packet(size=92, ptype=PacketType.REQUEST, priority=0)
    high = make_packet(size=92, ptype=PacketType.REQUEST, priority=5)
    queue.enqueue(low)
    queue.enqueue(high)
    assert queue.dequeue() is high
    assert queue.dequeue() is low


def test_level_priority_fifo_within_level():
    queue = LevelPriorityQueue(capacity_bytes=10_000)
    first = make_packet(size=92, ptype=PacketType.REQUEST, priority=3)
    second = make_packet(size=92, ptype=PacketType.REQUEST, priority=3)
    queue.enqueue(first)
    queue.enqueue(second)
    assert queue.dequeue() is first


def test_level_priority_evicts_lower_level_when_full():
    queue = LevelPriorityQueue(capacity_bytes=200)
    low_packets = [make_packet(size=92, ptype=PacketType.REQUEST, priority=0)
                   for _ in range(2)]
    for packet in low_packets:
        assert queue.enqueue(packet)
    high = make_packet(size=92, ptype=PacketType.REQUEST, priority=7)
    assert queue.enqueue(high)
    # One low-priority packet must have been evicted to make room.
    assert queue.stats.dropped == 1
    assert queue.dequeue() is high


def test_level_priority_drops_equal_priority_arrival_when_full():
    queue = LevelPriorityQueue(capacity_bytes=184)
    assert queue.enqueue(make_packet(size=92, ptype=PacketType.REQUEST, priority=2))
    assert queue.enqueue(make_packet(size=92, ptype=PacketType.REQUEST, priority=2))
    assert not queue.enqueue(make_packet(size=92, ptype=PacketType.REQUEST, priority=2))


def test_level_priority_empty_dequeue():
    assert LevelPriorityQueue().dequeue() is None


# ---------------------------------------------------------------------------
# PriorityChannelQueue
# ---------------------------------------------------------------------------

def _channel_queue():
    return PriorityChannelQueue(
        channels=["request", "regular", "legacy"],
        queues={
            "request": DropTailQueue(capacity_bytes=10_000),
            "regular": DropTailQueue(capacity_bytes=10_000),
            "legacy": DropTailQueue(capacity_bytes=10_000),
        },
    )


def test_channel_queue_classifies_by_packet_type():
    queue = _channel_queue()
    queue.enqueue(make_packet(ptype=PacketType.REGULAR))
    queue.enqueue(make_packet(ptype=PacketType.LEGACY))
    queue.enqueue(make_packet(size=92, ptype=PacketType.REQUEST))
    assert queue.channel_length("request") == 1
    assert queue.channel_length("regular") == 1
    assert queue.channel_length("legacy") == 1


def test_channel_queue_strict_priority_order():
    queue = _channel_queue()
    legacy = make_packet(ptype=PacketType.LEGACY)
    regular = make_packet(ptype=PacketType.REGULAR)
    request = make_packet(size=92, ptype=PacketType.REQUEST)
    queue.enqueue(legacy)
    queue.enqueue(regular)
    queue.enqueue(request)
    assert queue.dequeue() is request
    assert queue.dequeue() is regular
    assert queue.dequeue() is legacy


def test_channel_queue_mismatched_channels_rejected():
    with pytest.raises(ValueError):
        PriorityChannelQueue(channels=["a"], queues={"b": DropTailQueue()})


def test_channel_queue_inner_drops_counted():
    queue = PriorityChannelQueue(
        channels=["regular"],
        queues={"regular": DropTailQueue(capacity_bytes=1_500)},
    )
    queue.classifier = lambda packet: "regular"
    queue.enqueue(make_packet())
    queue.enqueue(make_packet())
    assert queue.stats.dropped == 1
