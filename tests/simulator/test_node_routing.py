"""Tests for hosts, routers, routing, and topology construction."""

import pytest

from repro.simulator.node import Router
from repro.simulator.packet import Packet
from repro.simulator.topology import Topology, dumbbell_layout, parking_lot_layout
from repro.simulator.trace import ThroughputMonitor
from repro.transport.udp import UdpSender, UdpSink


def build_line_topology():
    """a --- R1 --- R2 --- b"""
    topo = Topology()
    topo.add_host("a", as_name="AS-a")
    topo.add_host("b", as_name="AS-b")
    topo.add_router("R1", as_name="AS-a")
    topo.add_router("R2", as_name="AS-b")
    topo.add_duplex_link("a", "R1", 10e6, 0.001)
    topo.add_duplex_link("R1", "R2", 10e6, 0.001)
    topo.add_duplex_link("R2", "b", 10e6, 0.001)
    topo.finalize()
    return topo


def test_routing_tables_point_toward_destinations():
    topo = build_line_topology()
    r1 = topo.router("R1")
    assert r1.route_for(Packet(src="a", dst="b")).dst_node.name == "R2"
    assert r1.route_for(Packet(src="b", dst="a")).dst_node.name == "a"


def test_local_hosts_registered_on_access_router():
    topo = build_line_topology()
    assert "a" in topo.router("R1").local_hosts
    assert "b" in topo.router("R2").local_hosts
    assert "a" not in topo.router("R2").local_hosts


def test_end_to_end_delivery_through_routers():
    topo = build_line_topology()
    monitor = ThroughputMonitor(topo.clock)
    UdpSink(topo.clock, topo.host("b"), monitor=monitor)
    sender = UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6)
    sender.start()
    topo.run(until=1.0)
    assert monitor.records["a"].packets_received > 50


def test_packet_to_unknown_destination_is_dropped():
    topo = build_line_topology()
    r1 = topo.router("R1")
    before = r1.packets_dropped
    r1.receive(Packet(src="a", dst="nowhere"), None)
    assert r1.packets_dropped == before + 1


def test_admit_from_host_false_drops_packet():
    class DenyRouter(Router):
        def admit_from_host(self, packet, from_link):
            return False

    topo = Topology()
    topo.add_host("a", as_name="A")
    topo.add_host("b", as_name="B")
    topo.add_router("R", router_cls=DenyRouter)
    topo.add_duplex_link("a", "R", 1e6, 0.001)
    topo.add_duplex_link("R", "b", 1e6, 0.001)
    topo.finalize()
    sink = UdpSink(topo.clock, topo.host("b"))
    UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6).start()
    topo.run(until=0.5)
    assert sink.packets_received == 0


def test_host_orphan_packets_counted():
    topo = build_line_topology()
    host = topo.host("b")
    host.receive(Packet(src="a", dst="b", flow_id="no-agent"), None)
    assert host.orphan_packets == 1


def test_host_outbound_filter_can_swallow():
    topo = build_line_topology()
    host = topo.host("a")
    host.outbound_filters.append(lambda packet: False)
    host.send(Packet(src="a", dst="b"))
    assert host.packets_sent == 0


def test_host_inbound_filter_can_swallow():
    topo = build_line_topology()
    host = topo.host("b")
    host.inbound_filters.append(lambda packet: False)
    host.receive(Packet(src="a", dst="b"), None)
    assert host.orphan_packets == 0  # swallowed before agent dispatch


def test_host_source_as_filled_on_send():
    topo = build_line_topology()
    host = topo.host("a")
    packet = Packet(src="a", dst="b")
    host.send(packet)
    assert packet.src_as == "AS-a"


def test_duplicate_node_name_rejected():
    topo = Topology()
    topo.add_host("x")
    with pytest.raises(ValueError):
        topo.add_host("x")


def test_host_and_router_lookup_type_checked():
    topo = build_line_topology()
    with pytest.raises(TypeError):
        topo.host("R1")
    with pytest.raises(TypeError):
        topo.router("a")


def test_dumbbell_layout_structure():
    topo = Topology()
    layout = dumbbell_layout(topo, num_source_as=3, hosts_per_as=2, num_receivers=2,
                             bottleneck_bps=1e6)
    assert len(layout.senders) == 6
    assert len(layout.access_routers) == 3
    assert len(layout.receivers) == 2
    assert layout.bottleneck_link.capacity_bps == 1e6
    # Every sender must route through the bottleneck to reach the receivers.
    ra0 = topo.router("Ra0")
    link = ra0.route_for(Packet(src=layout.senders[0], dst=layout.receivers[0]))
    assert link.dst_node.name == "Rbl"


def test_parking_lot_layout_structure():
    topo = Topology()
    layout = parking_lot_layout(topo, hosts_per_group=2, l1_bps=1e6, l2_bps=2e6)
    assert len(layout.group_a) == len(layout.group_b) == len(layout.group_c) == 2
    assert layout.bottleneck1.capacity_bps == 1e6
    assert layout.bottleneck2.capacity_bps == 2e6
    # Group A reaches its receivers through both bottlenecks.
    r1 = topo.router("R1")
    first_hop = r1.route_for(Packet(src="a0", dst=layout.receivers_ab[0]))
    assert first_hop.dst_node.name == "R2"
    r2 = topo.router("R2")
    second_hop = r2.route_for(Packet(src="a0", dst=layout.receivers_ab[0]))
    assert second_hop.dst_node.name == "R3"
    # Group C traffic leaves the parking lot at R2.
    hop_c = r1.route_for(Packet(src="c0", dst=layout.receivers_c[0]))
    assert hop_c.dst_node.name == "R2"
