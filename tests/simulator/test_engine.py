"""Tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import PeriodicTimer, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.25]


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_run_until_executes_events_at_exact_boundary(sim):
    fired = []
    sim.schedule(2.0, fired.append, "boundary")
    sim.run(until=2.0)
    assert fired == ["boundary"]


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_via_simulator_helper_accepts_none(sim):
    sim.cancel(None)  # must not raise


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_are_executed(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_stop_halts_processing(sim):
    fired = []

    def stopper():
        fired.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, fired.append, "late")
    sim.run()
    assert fired == ["stop"]


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reset_clears_queue_and_clock(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_max_events_limits_execution(sim):
    fired = []
    for i in range(10):
        sim.schedule(i + 1.0, fired.append, i)
    sim.run(max_events=4)
    assert len(fired) == 4


def test_run_until_with_empty_queue_advances_clock(sim):
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_max_events_with_pending_work_keeps_clock_at_last_event(sim):
    # Regression: the clock must NOT jump to `until` when the event cap
    # trips with events still due — a later run() must resume seamlessly.
    fired = []
    for i in range(10):
        sim.schedule(i + 1.0, fired.append, i)
    assert sim.run(until=20.0, max_events=4) == 4.0
    assert sim.now == 4.0
    assert sim.run(until=20.0) == 20.0
    assert fired == list(range(10))


def test_max_events_tripping_on_final_event_matches_drained_run(sim):
    # Regression: a run capped exactly at the last due event must end at the
    # same clock value as an uncapped run over the same events.
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.run(until=5.0, max_events=2) == 5.0
    assert sim.now == 5.0


def test_run_until_skips_over_cancelled_events_when_advancing(sim):
    event = sim.schedule(3.0, lambda: None)
    event.cancel()
    assert sim.run(until=10.0) == 10.0


def test_stop_keeps_clock_at_last_event_even_with_until(sim):
    # The documented contract: after stop() the clock stays at the last
    # executed event's time regardless of `until` or later queued events.
    sim.schedule(1.0, sim.stop)
    sim.schedule(5.0, lambda: None)
    assert sim.run(until=3.0) == 1.0
    assert sim.now == 1.0


def test_periodic_timer_fires_repeatedly(sim):
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop(sim):
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.schedule(2.5, timer.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_periodic_timer_custom_first_delay(sim):
    ticks = []
    timer = PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now), first_delay=0.5)
    timer.start()
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_timer_rejects_nonpositive_interval(sim):
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)


def test_periodic_timer_survives_callback_exception(sim):
    # Regression: a raising callback must not silently kill the timer —
    # the error surfaces to the caller, but once handled the timer keeps
    # ticking on its original schedule.
    ticks = []

    def flaky():
        ticks.append(sim.now)
        if len(ticks) == 2:
            raise RuntimeError("transient monitor failure")

    timer = PeriodicTimer(sim, 1.0, flaky)
    timer.start()
    with pytest.raises(RuntimeError):
        sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop_inside_raising_callback_stays_stopped(sim):
    calls = []

    def stop_and_fail():
        calls.append(sim.now)
        timer.stop()
        raise RuntimeError("boom")

    timer = PeriodicTimer(sim, 1.0, stop_and_fail)
    timer.start()
    with pytest.raises(RuntimeError):
        sim.run(until=5.0)
    sim.run(until=5.0)
    assert calls == [1.0]


# ---------------------------------------------------------------------------
# pending_events reports live work only
# ---------------------------------------------------------------------------

def test_pending_events_excludes_cancelled(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending_events == 5
    events[0].cancel()
    events[3].cancel()
    assert sim.pending_events == 3
    assert sim.cancelled_pending == 2


def test_pending_events_zero_when_only_cancelled_remain(sim):
    # A drained()-style poller must see no phantom work.
    for event in [sim.schedule(1.0, lambda: None) for _ in range(4)]:
        event.cancel()
    assert sim.pending_events == 0


def test_double_cancel_counts_once(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.cancelled_pending == 1
    assert sim.pending_events == 0
    sim.run()
    assert sim.events_processed == 0


def test_cancel_after_dispatch_does_not_corrupt_accounting(sim):
    # Cancelling an event that already fired must be a no-op: it left the
    # heap at dispatch, so no tombstone exists to account for.
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    event.cancel()
    assert sim.pending_events == 0
    assert sim.cancelled_pending == 0


def test_cancel_own_event_from_callback_does_not_corrupt_accounting(sim):
    # The PeriodicTimer.stop()-inside-callback / TCP-abort pattern: the
    # running event's handle is cancelled while it executes.
    timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
    timer.start()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.pending_events == 0
    assert sim.cancelled_pending == 0


# ---------------------------------------------------------------------------
# Heap compaction under cancel-heavy workloads
# ---------------------------------------------------------------------------

def test_compaction_prunes_cancelled_entries(sim):
    keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    doomed = [sim.schedule(float(i + 1) + 0.5, lambda: None) for i in range(200)]
    for event in doomed:
        event.cancel()
    # Cancelled events repeatedly exceeded the live ones: the heap must have
    # been compacted instead of keeping all 200 tombstones around.
    assert sim.pending_events == 10
    assert sim.cancelled_pending <= 64  # bounded by the compaction threshold
    assert len(sim._queue) == sim.pending_events + sim.cancelled_pending
    assert all(not event.cancelled for event in keep)


def test_compaction_preserves_dispatch_order_and_results(sim):
    # The same cancel-heavy workload with and without compaction in the mix
    # must fire the surviving events in identical (time, seq) order.
    def drive(simulator):
        fired = []
        events = []
        for i in range(300):
            events.append(simulator.schedule(
                ((i * 7) % 50) + 1.0, fired.append, i))
        # Cancel a deterministic two-thirds, enough to trigger compaction.
        for i, event in enumerate(events):
            if i % 3 != 0:
                event.cancel()
        simulator.run()
        return fired

    first = drive(Simulator())
    second = drive(Simulator())
    assert first == second
    assert first == sorted(first, key=lambda i: (((i * 7) % 50) + 1.0, i))
    assert len(first) == 100


def test_cancel_heavy_workload_mid_run_stays_correct(sim):
    # Cancellations issued by callbacks during the run (the rate-limiter /
    # retransmit-timer pattern) must not disturb later dispatches.
    fired = []
    timers = [sim.schedule(10.0 + i * 1e-3, fired.append, f"timer{i}")
              for i in range(150)]

    def cancel_timers():
        for timer in timers:
            timer.cancel()
        fired.append("cancelled")

    sim.schedule(1.0, cancel_timers)
    sim.schedule(2.0, fired.append, "after")
    sim.schedule(20.0, fired.append, "end")
    sim.run()
    assert fired == ["cancelled", "after", "end"]


def test_schedule_fast_interleaves_with_regular_events(sim):
    # schedule_fast events carry no handle but share the same (time, seq)
    # ordering domain as regular events.
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule_fast(1.0, order.append, ("b",))
    sim.schedule(1.0, order.append, "c")
    sim.schedule_fast(0.5, order.append, ("early",))
    sim.run()
    assert order == ["early", "a", "b", "c"]
    assert sim.events_processed == 4


# ---------------------------------------------------------------------------
# reset() determinism (sweep workers reuse simulators)
# ---------------------------------------------------------------------------

def test_reset_restarts_sequence_counter():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.reset()
    again = sim.schedule(1.0, lambda: None)
    assert again.seq == first.seq


def test_reset_clears_cancellation_bookkeeping_like_a_fresh_instance():
    sim = Simulator()
    for event in [sim.schedule(1.0, lambda: None) for _ in range(8)]:
        event.cancel()
    sim.schedule(2.0, lambda: None)
    sim.run(until=0.5)
    sim.stop()
    sim.reset()
    fresh = Simulator()
    snapshot = lambda s: (s.now, s.events_processed, s.pending_events,
                          s.cancelled_pending, s._seq, s._stopped, s._running)
    assert snapshot(sim) == snapshot(fresh)


def test_reset_simulator_orders_events_like_a_fresh_one():
    def drive(sim):
        log = []
        # Same-instant events fire in scheduling order, which is decided by
        # the sequence counter — the part reset() must also rewind.
        sim.schedule(1.0, log.append, "first")
        sim.schedule(1.0, log.append, "second")
        sim.schedule(0.5, log.append, "early")
        sim.run()
        return log, sim.now, sim.events_processed

    reused = Simulator()
    drive(reused)
    reused.reset()
    assert drive(reused) == drive(Simulator())


def test_reset_detaches_instance_dispatch_tap():
    # A tap attached for one run must not leak into the next scenario when a
    # sweep worker reuses the simulator (the same class of state leak PR 5
    # fixed for counters; found by the NF008 lifecycle lint rule).
    sim = Simulator()
    seen = []
    sim.dispatch_tap = lambda callback: seen.append(callback)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert len(seen) == 1
    sim.reset()
    assert sim.dispatch_tap is Simulator.default_dispatch_tap
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert len(seen) == 1
