"""Tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import PeriodicTimer, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.25]


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_run_until_executes_events_at_exact_boundary(sim):
    fired = []
    sim.schedule(2.0, fired.append, "boundary")
    sim.run(until=2.0)
    assert fired == ["boundary"]


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_via_simulator_helper_accepts_none(sim):
    sim.cancel(None)  # must not raise


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_are_executed(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_stop_halts_processing(sim):
    fired = []

    def stopper():
        fired.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, fired.append, "late")
    sim.run()
    assert fired == ["stop"]


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reset_clears_queue_and_clock(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_max_events_limits_execution(sim):
    fired = []
    for i in range(10):
        sim.schedule(i + 1.0, fired.append, i)
    sim.run(max_events=4)
    assert len(fired) == 4


def test_run_until_with_empty_queue_advances_clock(sim):
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_max_events_with_pending_work_keeps_clock_at_last_event(sim):
    # Regression: the clock must NOT jump to `until` when the event cap
    # trips with events still due — a later run() must resume seamlessly.
    fired = []
    for i in range(10):
        sim.schedule(i + 1.0, fired.append, i)
    assert sim.run(until=20.0, max_events=4) == 4.0
    assert sim.now == 4.0
    assert sim.run(until=20.0) == 20.0
    assert fired == list(range(10))


def test_max_events_tripping_on_final_event_matches_drained_run(sim):
    # Regression: a run capped exactly at the last due event must end at the
    # same clock value as an uncapped run over the same events.
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.run(until=5.0, max_events=2) == 5.0
    assert sim.now == 5.0


def test_run_until_skips_over_cancelled_events_when_advancing(sim):
    event = sim.schedule(3.0, lambda: None)
    event.cancel()
    assert sim.run(until=10.0) == 10.0


def test_stop_keeps_clock_at_last_event_even_with_until(sim):
    # The documented contract: after stop() the clock stays at the last
    # executed event's time regardless of `until` or later queued events.
    sim.schedule(1.0, sim.stop)
    sim.schedule(5.0, lambda: None)
    assert sim.run(until=3.0) == 1.0
    assert sim.now == 1.0


def test_periodic_timer_fires_repeatedly(sim):
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop(sim):
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.schedule(2.5, timer.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_periodic_timer_custom_first_delay(sim):
    ticks = []
    timer = PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now), first_delay=0.5)
    timer.start()
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_timer_rejects_nonpositive_interval(sim):
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)


def test_periodic_timer_survives_callback_exception(sim):
    # Regression: a raising callback must not silently kill the timer —
    # the error surfaces to the caller, but once handled the timer keeps
    # ticking on its original schedule.
    ticks = []

    def flaky():
        ticks.append(sim.now)
        if len(ticks) == 2:
            raise RuntimeError("transient monitor failure")

    timer = PeriodicTimer(sim, 1.0, flaky)
    timer.start()
    with pytest.raises(RuntimeError):
        sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop_inside_raising_callback_stays_stopped(sim):
    calls = []

    def stop_and_fail():
        calls.append(sim.now)
        timer.stop()
        raise RuntimeError("boom")

    timer = PeriodicTimer(sim, 1.0, stop_and_fail)
    timer.start()
    with pytest.raises(RuntimeError):
        sim.run(until=5.0)
    sim.run(until=5.0)
    assert calls == [1.0]


# ---------------------------------------------------------------------------
# reset() determinism (sweep workers reuse simulators)
# ---------------------------------------------------------------------------

def test_reset_restarts_sequence_counter():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.reset()
    again = sim.schedule(1.0, lambda: None)
    assert again.seq == first.seq


def test_reset_simulator_orders_events_like_a_fresh_one():
    def drive(sim):
        log = []
        # Same-instant events fire in scheduling order, which is decided by
        # the sequence counter — the part reset() must also rewind.
        sim.schedule(1.0, log.append, "first")
        sim.schedule(1.0, log.append, "second")
        sim.schedule(0.5, log.append, "early")
        sim.run()
        return log, sim.now, sim.events_processed

    reused = Simulator()
    drive(reused)
    reused.reset()
    assert drive(reused) == drive(Simulator())
