"""Tests for the §5 partial-deployment subsystem and strategic attackers.

Covers the :class:`DeploymentPlan` value object, the legacy access-router
path, the strategic attacker's schedule, and the deployment-aware dumbbell
scenarios behind the ``fig12`` sweep.  Scenario tests use deliberately tiny
topologies; the full-scale sweep lives in benchmarks/.
"""

import pytest

from repro.core.access import LegacyAccessRouter
from repro.core.bottleneck import NetFenceRouter
from repro.core.deployment import DeploymentPlan
from repro.core.header import HEADER_KEY, NetFenceHeader
from repro.core.params import NetFenceParams
from repro.experiments import fig12_deployment, runner
from repro.experiments.scenarios import (
    DumbbellScenarioConfig,
    run_dumbbell_scenario,
)
from repro.simulator.packet import Packet, PacketType
from repro.transport.udp import StrategicAttacker


# ---------------------------------------------------------------------------
# DeploymentPlan
# ---------------------------------------------------------------------------

def test_plan_from_fraction_is_deterministic_and_sized():
    plan = DeploymentPlan.from_fraction(10, 0.5, seed=3)
    again = DeploymentPlan.from_fraction(10, 0.5, seed=3)
    assert plan == again
    assert len(plan.enabled_as) == 5
    assert plan.fraction == 0.5
    assert all(0 <= i < 10 for i in plan.enabled_as)


def test_plan_fraction_extremes():
    assert DeploymentPlan.from_fraction(4, 0.0).enabled_as == ()
    assert DeploymentPlan.from_fraction(4, 1.0).enabled_as == (0, 1, 2, 3)
    assert DeploymentPlan.full(4).is_full
    assert not DeploymentPlan.from_fraction(4, 1.0, bottleneck_enabled=False).is_full


def test_plan_varies_with_seed():
    subsets = {DeploymentPlan.from_fraction(10, 0.3, seed=s).enabled_as
               for s in range(8)}
    assert len(subsets) > 1


def test_plan_rejects_bad_values():
    with pytest.raises(ValueError):
        DeploymentPlan.from_fraction(4, 1.5)
    with pytest.raises(ValueError):
        DeploymentPlan(num_source_as=2, enabled_as=(5,))


def test_plan_is_enabled_and_describe():
    plan = DeploymentPlan(num_source_as=3, enabled_as=(1,))
    assert not plan.is_enabled(0) and plan.is_enabled(1)
    assert "1/3" in plan.describe()


# ---------------------------------------------------------------------------
# Legacy forwarding path
# ---------------------------------------------------------------------------

def test_legacy_access_router_demotes_unstamped_traffic(sim):
    router = LegacyAccessRouter(sim, "Ra-legacy", as_name="AS-legacy")
    packet = Packet(src="s", dst="d")
    assert packet.ptype is PacketType.REGULAR
    assert router.admit_from_host(packet, None) is True
    assert packet.ptype is PacketType.LEGACY
    assert router.legacy_marked == 1


def test_legacy_access_router_leaves_stamped_traffic_alone(sim):
    router = LegacyAccessRouter(sim, "Ra-legacy")
    packet = Packet(src="s", dst="d")
    packet.set_header(HEADER_KEY, NetFenceHeader())
    router.admit_from_host(packet, None)
    assert packet.ptype is PacketType.REGULAR


def test_netfence_router_demotes_headerless_transit(sim, domain):
    router = NetFenceRouter(sim, "Rb", as_name="AS-core", domain=domain)
    bare = Packet(src="s", dst="d")
    assert router.on_transit(bare, None) is True
    assert bare.ptype is PacketType.LEGACY
    stamped = Packet(src="s", dst="d")
    stamped.set_header(HEADER_KEY, NetFenceHeader())
    router.on_transit(stamped, None)
    assert stamped.ptype is PacketType.REGULAR


# ---------------------------------------------------------------------------
# Strategic attacker schedule
# ---------------------------------------------------------------------------

def test_strategic_timing_aligns_with_the_control_interval():
    params = NetFenceParams()
    on_s, off_s, phase_s = StrategicAttacker.timing(params)
    period = on_s + off_s
    assert period == pytest.approx(3 * params.control_interval)
    assert on_s < params.control_interval  # pauses before the adjustment
    assert phase_s > 0


def test_naive_pattern_matches_strategic_average_volume(small_network):
    params = NetFenceParams()
    rate = 1.0e6
    attacker = StrategicAttacker(
        small_network.clock, small_network.topo.host("bad"), "victim",
        rate_bps=rate, params=params)
    naive = StrategicAttacker.naive_pattern(params, rate_bps=rate)
    naive_avg = rate * naive.on_s / (naive.on_s + naive.off_s)
    assert attacker.average_rate_bps == pytest.approx(naive_avg, rel=1e-6)
    # ... but the naive period drifts against the AIMD clock.
    assert (naive.on_s + naive.off_s) % params.control_interval != pytest.approx(0.0)


def test_strategic_attacker_trickles_during_off_phase(small_network):
    sim = small_network.clock
    attacker = StrategicAttacker(
        sim, small_network.topo.host("bad"), "victim",
        rate_bps=1.0e6, params=NetFenceParams())
    attacker.start_aligned()
    pattern = attacker.pattern
    sim.run(until=pattern.phase_s + pattern.on_s + 0.5)
    sent_during_burst = attacker.packets_sent
    assert sent_during_burst > 0
    # Mid off-phase: still sending, but at the (much lower) trickle rate.
    sim.run(until=pattern.phase_s + pattern.on_s + pattern.off_s - 0.5)
    sent_during_off = attacker.packets_sent - sent_during_burst
    assert sent_during_off > 0
    off_window = pattern.off_s - 1.0
    observed_bps = sent_during_off * attacker.packet_size * 8 / off_window
    assert observed_bps < 0.2 * attacker.rate_bps


# ---------------------------------------------------------------------------
# Deployment-aware scenarios
# ---------------------------------------------------------------------------

def tiny(system="netfence", **overrides):
    defaults = dict(
        system=system,
        num_source_as=4,
        hosts_per_as=2,
        bottleneck_bps=800e3,
        attack_rate_bps=400e3,
        num_colluders=2,
        sim_time=40.0,
        warmup=20.0,
        seed=1,
    )
    defaults.update(overrides)
    return DumbbellScenarioConfig(**defaults)


def test_config_rejects_bad_deployment_and_strategy():
    with pytest.raises(ValueError):
        DumbbellScenarioConfig(deployment_fraction=1.2)
    with pytest.raises(ValueError):
        DumbbellScenarioConfig(attack_strategy="sneaky")
    with pytest.raises(ValueError):
        DumbbellScenarioConfig(as_workloads=("files", "nonsense"))
    with pytest.raises(ValueError):
        # The strategic attacker derives its own timing; an explicit
        # (Ton, Toff) would be silently ignored, so it is rejected.
        DumbbellScenarioConfig(attack_strategy="strategic", attack_on_off=(2.0, 8.0))


def test_full_deployment_never_builds_legacy_machinery(monkeypatch):
    """At fraction 1.0 the deployment subsystem must be pure pass-through.

    Guard for the acceptance criterion that fraction 1.0 matches the
    full-deployment dumbbell scenarios used by Figs. 8–11: no legacy access
    router may ever be instantiated, and the bottleneck must keep its
    NetFence channel queue (a plain Router bottleneck would mean
    ``bottleneck_deployed`` was misread).
    """
    import repro.experiments.scenarios as scenarios

    class BoomRouter:
        def __init__(self, *args, **kwargs):
            raise AssertionError("LegacyAccessRouter built at full deployment")

    monkeypatch.setattr(scenarios, "LegacyAccessRouter", BoomRouter)
    full = run_dumbbell_scenario(tiny(deployment_fraction=1.0))
    assert full.enabled_as == (0, 1, 2, 3)
    assert full.legacy_user_throughputs == {}
    assert len(full.enabled_user_throughputs) == 4
    # Same config, same seed → byte-identical repeat (determinism contract).
    again = run_dumbbell_scenario(tiny(deployment_fraction=1.0))
    assert again.user_throughputs == full.user_throughputs
    assert again.attacker_throughputs == full.attacker_throughputs


def test_partial_deployment_protects_upgraded_ases_first():
    result = run_dumbbell_scenario(tiny(deployment_fraction=0.5))
    assert len(result.enabled_as) == 2
    enabled = result.enabled_user_throughputs
    legacy = result.legacy_user_throughputs
    assert len(enabled) == 2 and len(legacy) == 2
    # Upgraded ASes' users keep a policed regular channel; legacy users
    # share the lowest-priority channel with the legacy attackers.
    assert result.avg_throughput_bps(enabled) > result.avg_throughput_bps(legacy)
    assert 0.0 <= result.legit_share <= 1.0


def test_zero_deployment_serves_everything_on_the_legacy_channel():
    result = run_dumbbell_scenario(tiny(deployment_fraction=0.0))
    assert result.enabled_as == ()
    assert result.enabled_user_throughputs == {}
    assert len(result.legacy_user_throughputs) == 4


def test_legacy_bottleneck_disables_policing():
    result = run_dumbbell_scenario(
        tiny(deployment_fraction=1.0, bottleneck_deployed=False))
    # No NetFence bottleneck → no mon state → attackers are never policed,
    # so they keep a large share of the (FIFO) bottleneck.
    assert result.avg_attacker_throughput_bps > 0.3 * result.config.fair_share_bps


def test_per_as_workload_mix():
    result = run_dumbbell_scenario(
        tiny(as_workloads=("files", "longrun"), sim_time=30.0, warmup=10.0))
    # ASes 0 and 2 run the files workload (logged); 1 and 3 run longrun.
    logged_as = {result.sender_as[user] for user in result.transfer_logs}
    assert logged_as == {0, 2}
    assert sum(log.attempted for log in result.transfer_logs.values()) > 0


def test_deployment_plan_property_uses_scenario_seed():
    a = tiny(deployment_fraction=0.5, seed=1).deployment_plan
    b = tiny(deployment_fraction=0.5, seed=2).deployment_plan
    assert a == tiny(deployment_fraction=0.5, seed=1).deployment_plan
    assert len(a.enabled_as) == len(b.enabled_as) == 2


# ---------------------------------------------------------------------------
# fig12 grid and runner wiring
# ---------------------------------------------------------------------------

def test_fig12_grid_covers_the_full_cross_product():
    specs = fig12_deployment.grid()
    assert len(specs) == (len(fig12_deployment.FRACTIONS)
                          * len(fig12_deployment.STRATEGIES)
                          * len(fig12_deployment.SYSTEMS))
    assert all(spec.experiment == "fig12" for spec in specs)
    fractions = {spec.kwargs["deployment_fraction"] for spec in specs}
    assert fractions == set(fig12_deployment.FRACTIONS)


def test_fig12_registered_with_the_runner():
    assert "fig12" in runner.EXPERIMENTS
    quick = runner.EXPERIMENTS["fig12"].build_grid(True)
    full = runner.EXPERIMENTS["fig12"].build_grid(False)
    assert {s.kwargs["deployment_fraction"] for s in quick} == {0.0, 0.5, 1.0}
    assert len(quick) < len(full)
