"""Tests for the shared-directory work queue, worker loop, and distrib CLI."""

import json
import multiprocessing
import threading
import time

import pytest

from repro.experiments import runner
from repro.experiments.distrib import (
    LeaseLost,
    QueueWorker,
    WorkQueue,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    merge_rows,
    register_point,
    run_sweep,
)
from repro.store import ResultStore


def bench_specs(n=4, duration=0.0):
    return [ScenarioSpec.make("bench_sleep", seed=i, duration=duration, payload=i)
            for i in range(n)]


@register_point("flaky_marker")
def _flaky_marker_point(seed=1, marker="", fail_times=1):
    """Fails its first ``fail_times`` executions, then succeeds — the
    retry-budget tests' stand-in for a transiently flaky grid point."""
    import os

    attempts = 0
    if os.path.exists(marker):
        with open(marker) as fh:
            attempts = int(fh.read() or 0)
    with open(marker, "w") as fh:
        fh.write(str(attempts + 1))
    if attempts < fail_times:
        raise RuntimeError(f"transient failure #{attempts + 1}")
    return {"seed": seed, "recovered_after": attempts}


# ---------------------------------------------------------------------------
# Queue basics
# ---------------------------------------------------------------------------

def test_submit_is_idempotent_and_counts_pending(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    specs = bench_specs(3)
    assert queue.submit(specs) == 3
    assert queue.submit(specs) == 0  # already enqueued
    counts = queue.counts()
    assert counts == {"tasks": 3, "pending": 3, "running": 0, "done": 0,
                      "failed": 0}
    assert not queue.drained()


def test_claim_execute_complete_lifecycle(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    (spec,) = bench_specs(1)
    queue.submit([spec])
    lease = queue.claim("w0", ttl=30.0)
    assert lease is not None
    assert lease.spec == spec
    assert queue.counts()["running"] == 1
    assert queue.claim("w1", ttl=30.0) is None  # held elsewhere
    assert queue.complete(lease, elapsed_s=0.1)
    assert queue.counts() == {"tasks": 1, "pending": 0, "running": 0,
                              "done": 1, "failed": 0}
    assert queue.drained()
    assert queue.claim("w1", ttl=30.0) is None  # done tasks are not re-claimed
    assert queue.submit([spec]) == 0  # finished work is not re-enqueued


def test_completed_failure_is_recorded_not_retried(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    (spec,) = bench_specs(1)
    queue.submit([spec])
    lease = queue.claim("w0")
    assert queue.complete(lease, error="Traceback: boom")
    counts = queue.counts()
    assert counts["failed"] == 1 and counts["done"] == 0
    assert queue.drained()  # deterministic failures do not wedge the queue
    assert queue.failures() == [(lease.key, "Traceback: boom")]


# ---------------------------------------------------------------------------
# Lease contention (satellite: exactly one winner, expiry reclaim)
# ---------------------------------------------------------------------------

def test_racing_claims_yield_exactly_one_lease(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    queue.submit(bench_specs(1))
    n_threads = 8
    barrier = threading.Barrier(n_threads)
    leases = [None] * n_threads

    def racer(i):
        barrier.wait()
        leases[i] = queue.claim(f"w{i}", ttl=30.0)

    threads = [threading.Thread(target=racer, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    winners = [lease for lease in leases if lease is not None]
    assert len(winners) == 1


def test_expired_lease_is_reclaimable_and_loser_detects_theft(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    queue.submit(bench_specs(1))
    stale = queue.claim("w0", ttl=0.05)
    assert stale is not None
    time.sleep(0.1)
    # Racing stealers: exactly one reclaims the expired lease.
    n_threads = 4
    barrier = threading.Barrier(n_threads)
    leases = [None] * n_threads

    def stealer(i):
        barrier.wait()
        leases[i] = queue.claim(f"thief{i}", ttl=30.0)

    threads = [threading.Thread(target=stealer, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    winners = [lease for lease in leases if lease is not None]
    assert len(winners) == 1
    # The original holder's heartbeat must see the theft, not renew through it.
    with pytest.raises(LeaseLost):
        queue.renew(stale, ttl=30.0)
    # The thief's lease renews fine.
    queue.renew(winners[0], ttl=30.0)


def test_corrupt_lease_file_is_stolen_after_grace(tmp_path):
    """Regression: a 0-byte lease (claimer died between the O_EXCL create
    and the JSON write) must become claimable once its mtime + ttl passes,
    not wedge the task forever."""
    queue = WorkQueue(str(tmp_path / "q"))
    queue.submit(bench_specs(1))
    lease = queue.claim("w0", ttl=0.1)
    open(queue._lease_path(lease.key), "w").close()  # truncate to 0 bytes
    assert queue.claim("w1", ttl=0.1) is None  # fresh corrupt lease: grace
    time.sleep(0.15)
    # The grace window is mtime + the *claimer's* ttl (the dead claimer's
    # intended ttl is unreadable from a truncated lease).
    recovered = queue.claim("w1", ttl=0.1)
    assert recovered is not None
    assert recovered.worker_id == "w1"
    queue.renew(recovered, ttl=30.0)  # stolen lease is fully owned


def test_corrupt_done_marker_counts_as_done_everywhere(tmp_path):
    """Regression: claim() skips any existing done marker, so counts() and
    drained() must treat an unparseable marker as done too — otherwise the
    task is unclaimable yet 'pending' forever and workers never exit."""
    queue = WorkQueue(str(tmp_path / "q"))
    (spec,) = bench_specs(1)
    queue.submit([spec])
    open(queue._done_path(WorkQueue.task_key(spec)), "w").close()
    assert queue.claim("w0") is None
    counts = queue.counts()
    assert counts["pending"] == 0
    assert counts["done"] == 1
    assert queue.drained()


def test_renew_extends_expiry_for_live_lease(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    queue.submit(bench_specs(1))
    lease = queue.claim("w0", ttl=0.2)
    first_expiry = lease.expires_at
    queue.renew(lease, ttl=60.0)
    assert lease.expires_at > first_expiry
    time.sleep(0.25)  # original ttl elapsed; renewed lease must still hold
    assert queue.claim("w1", ttl=30.0) is None


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------

def test_single_worker_drains_queue_into_store(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    store = ResultStore(str(tmp_path / "s.sqlite"))
    specs = bench_specs(3)
    queue.submit(specs)
    stats = QueueWorker(queue, store=store, worker_id="solo").run()
    assert stats.claimed == 3
    assert stats.completed == 3
    assert stats.failed == 0
    assert queue.drained()
    merged, missing = store.fetch_specs(specs)
    assert not missing
    assert merged == merge_rows(run_sweep(specs))


def test_worker_records_point_failures(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    store = ResultStore(str(tmp_path / "s.sqlite"))
    bad = ScenarioSpec.make("no_such_experiment", seed=1)
    specs = bench_specs(2) + [bad]
    queue.submit(specs)
    stats = QueueWorker(queue, store=store, worker_id="solo").run()
    assert stats.completed == 2
    assert stats.failed == 1
    assert "no_such_experiment" in stats.errors[0]
    assert queue.drained()
    merged, missing = store.fetch_specs(specs)
    assert missing == [bad]  # failures never reach the store
    assert len(merged) == 2


def test_worker_max_points_and_idle_timeout(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    queue.submit(bench_specs(3))
    stats = QueueWorker(queue, worker_id="capped", max_points=1).run()
    assert stats.claimed == 1
    # Remaining tasks pending, someone else holds nothing: idle_timeout lets a
    # worker on an empty-but-undrained queue give up.
    lease = queue.claim("other", ttl=60.0)
    assert lease is not None
    started = time.time()
    stats = QueueWorker(queue, worker_id="bored", idle_timeout=0.3,
                        poll_interval=0.05, max_points=2).run()
    assert stats.claimed == 1  # took the one remaining free task
    assert time.time() - started < 5.0


# ---------------------------------------------------------------------------
# Retry budget (satellite: flaky points are re-queued, attempts recorded)
# ---------------------------------------------------------------------------

def test_failed_attempts_bookkeeping(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    assert queue.failed_attempts("deadbeef") == 0
    assert queue.record_failed_attempt("deadbeef", "Traceback: boom") == 1
    assert queue.record_failed_attempt("deadbeef", "Traceback: boom2") == 2
    assert queue.failed_attempts("deadbeef") == 2


def test_flaky_point_is_retried_and_attempt_recorded_in_store(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    store = ResultStore(str(tmp_path / "s.sqlite"))
    spec = ScenarioSpec.make("flaky_marker", seed=1,
                             marker=str(tmp_path / "marker"), fail_times=1)
    queue.submit([spec])
    stats = QueueWorker(queue, store=store, worker_id="patient",
                        retries=1).run()
    assert stats.retried == 1
    assert stats.completed == 1
    assert stats.failed == 0
    counts = queue.counts()
    assert counts["done"] == 1 and counts["failed"] == 0
    # The store's provenance columns say which attempt finally succeeded.
    (record,) = store.point_records()
    assert record.attempt == 2
    rows, missing = store.fetch_specs([spec])
    assert not missing and rows == [{"seed": 1, "recovered_after": 1}]


def test_retry_budget_exhaustion_is_a_final_failure(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    spec = ScenarioSpec.make("flaky_marker", seed=2,
                             marker=str(tmp_path / "marker"), fail_times=10)
    queue.submit([spec])
    stats = QueueWorker(queue, worker_id="persistent", retries=2).run()
    assert stats.retried == 2
    assert stats.failed == 1
    assert stats.completed == 0
    counts = queue.counts()
    assert counts["failed"] == 1
    assert queue.drained()
    (key, error) = queue.failures()[0]
    assert "transient failure #3" in error


def test_zero_retries_keeps_the_fail_fast_behaviour(tmp_path):
    queue = WorkQueue(str(tmp_path / "q"))
    spec = ScenarioSpec.make("flaky_marker", seed=3,
                             marker=str(tmp_path / "marker"), fail_times=1)
    queue.submit([spec])
    stats = QueueWorker(queue, worker_id="hasty", retries=0).run()
    assert stats.retried == 0
    assert stats.failed == 1
    assert queue.counts()["failed"] == 1


def test_negative_retries_rejected(tmp_path):
    with pytest.raises(ValueError):
        QueueWorker(WorkQueue(str(tmp_path / "q")), retries=-1)


def test_retried_attempts_do_not_consume_the_max_points_budget(tmp_path):
    """Regression: with --max-points 1, a transiently flaky point must be
    retried to completion, not counted twice and abandoned pending."""
    queue = WorkQueue(str(tmp_path / "q"))
    spec = ScenarioSpec.make("flaky_marker", seed=4,
                             marker=str(tmp_path / "marker"), fail_times=1)
    queue.submit([spec])
    stats = QueueWorker(queue, worker_id="budgeted", retries=1,
                        max_points=1).run()
    assert stats.claimed == 2
    assert stats.retried == 1
    assert stats.completed == 1
    assert queue.drained()


def test_release_leaves_a_stolen_lease_untouched(tmp_path):
    """Regression: a holder whose lease expired and was stolen must not
    unlink the thief's live lease when it releases for a retry — that
    would reopen a task the thief is still executing."""
    queue = WorkQueue(str(tmp_path / "q"))
    queue.submit(bench_specs(1))
    stale = queue.claim("w0", ttl=0.05)
    time.sleep(0.1)
    thief = queue.claim("w1", ttl=30.0)
    assert thief is not None
    assert not queue.owns(stale)
    assert queue.owns(thief)
    queue.release(stale)  # no-op: the thief's lease stands
    assert queue.owns(thief)
    assert queue.claim("w2", ttl=30.0) is None  # task not reopened
    queue.release(thief)
    assert queue.claim("w2", ttl=30.0) is not None


# ---------------------------------------------------------------------------
# Acceptance: two worker processes, zero duplicates, export == run_sweep
# ---------------------------------------------------------------------------

def _worker_process(queue_dir, store_path, worker_id):
    queue = WorkQueue(queue_dir)
    store = ResultStore(store_path)
    QueueWorker(queue, store=store, worker_id=worker_id, lease_ttl=30.0).run()


@pytest.mark.skipif("fork" not in multiprocessing.get_all_start_methods(),
                    reason="needs fork start method")
def test_two_worker_processes_share_grid_with_zero_duplicate_executions(tmp_path):
    queue_dir = str(tmp_path / "q")
    store_path = str(tmp_path / "s.sqlite")
    specs = bench_specs(6, duration=0.02)
    WorkQueue(queue_dir).submit(specs)
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=_worker_process,
                         args=(queue_dir, store_path, f"proc{i}"))
             for i in range(2)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    queue = WorkQueue(queue_dir)
    assert queue.drained()
    assert queue.counts()["done"] == 6
    store = ResultStore(store_path)
    # Append-only store: a duplicate execution would appear as a 7th record.
    records = store.point_records()
    assert len(records) == 6
    assert len({record.cache_key for record in records}) == 6
    # The merged grid equals a single-process run_sweep, row for row.
    merged, missing = store.fetch_specs(specs)
    assert not missing
    assert merged == merge_rows(run_sweep(specs))


# ---------------------------------------------------------------------------
# CLI (runner submit / worker / export / status)
# ---------------------------------------------------------------------------

@pytest.fixture
def bench_experiment(monkeypatch):
    """Register a tiny 'bench' experiment grid with the runner."""
    specs = bench_specs(3)
    definition = runner.ExperimentDef(
        "bench", lambda quick: specs, lambda rows: f"bench rows={len(rows)}")
    monkeypatch.setitem(runner.EXPERIMENTS, "bench", definition)
    return specs


def test_cli_submit_worker_status_export_round_trip(tmp_path, capsys,
                                                    bench_experiment):
    queue_dir = str(tmp_path / "q")
    store_path = str(tmp_path / "s.sqlite")

    assert runner.main(["submit", "bench", "--queue", queue_dir]) == 0
    assert "bench: enqueued 3/3 points" in capsys.readouterr().out

    assert runner.main(["worker", "--queue", queue_dir, "--store", store_path,
                        "--worker-id", "cli-w0"]) == 0
    out = capsys.readouterr().out
    assert "cli-w0: 3 completed, 0 failed" in out

    assert runner.main(["status", "--queue", queue_dir, "--store", store_path]) == 0
    out = capsys.readouterr().out
    assert "3 done" in out
    assert "store bench_sleep: 3 points" in out

    assert runner.main(["export", "bench", "--store", store_path,
                        "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["experiment"] == "bench"
    assert payload[0]["missing"] == 0
    assert payload[0]["rows"] == [
        {"seed": i, "duration": 0.0, "payload": i} for i in range(3)]

    # table format goes through the experiment's own formatter
    assert runner.main(["export", "bench", "--store", store_path]) == 0
    assert "bench rows=3" in capsys.readouterr().out

    # csv format emits a header plus one line per row
    assert runner.main(["export", "bench", "--store", store_path,
                        "--format", "csv"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0] == "seed,duration,payload"
    assert len(lines) == 4

    # --where filters rows
    assert runner.main(["export", "bench", "--store", store_path,
                        "--format", "json", "--where", "payload=1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rows"] == [{"seed": 1, "duration": 0.0, "payload": 1}]


def test_cli_export_fails_on_missing_points_unless_allowed(tmp_path, capsys,
                                                           bench_experiment):
    store_path = str(tmp_path / "s.sqlite")
    store = ResultStore(store_path)
    results = run_sweep(bench_experiment[:1], cache=store)
    assert results[0].error is None

    assert runner.main(["export", "bench", "--store", store_path,
                        "--format", "json"]) == 1
    assert "missing 2/3 grid points" in capsys.readouterr().err

    assert runner.main(["export", "bench", "--store", store_path,
                        "--format", "json", "--allow-missing"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["missing"] == 2
    assert len(payload[0]["rows"]) == 1


def test_cli_run_with_store_then_export_matches(tmp_path, capsys,
                                                bench_experiment):
    """`runner <exp> --store` fills the same store `runner export` reads."""
    store_path = str(tmp_path / "s.sqlite")
    assert runner.main(["bench", "--store", store_path, "--json"]) == 0
    run_payload = json.loads(capsys.readouterr().out)
    assert runner.main(["export", "bench", "--store", store_path,
                        "--format", "json"]) == 0
    export_payload = json.loads(capsys.readouterr().out)
    assert export_payload[0]["rows"] == run_payload[0]["rows"]


def test_cli_compact_drops_superseded_executions(tmp_path, capsys,
                                                 bench_experiment):
    store_path = str(tmp_path / "s.sqlite")
    store = ResultStore(store_path)
    for result in run_sweep(bench_experiment):
        store.put_result(result)
        store.put_result(result)  # stack a superseded execution per point
    assert runner.main(["compact", "--store", store_path]) == 0
    out = capsys.readouterr().out
    assert "removed 3 superseded execution(s)" in out
    assert len(ResultStore(store_path).point_records()) == 3


def test_cli_worker_retries_flag(tmp_path, capsys, monkeypatch):
    queue_dir = str(tmp_path / "q")
    store_path = str(tmp_path / "s.sqlite")
    spec = ScenarioSpec.make("flaky_marker", seed=9,
                             marker=str(tmp_path / "marker"), fail_times=1)
    WorkQueue(queue_dir).submit([spec])
    assert runner.main(["worker", "--queue", queue_dir, "--store", store_path,
                        "--worker-id", "cli-retry", "--retries", "1"]) == 0
    out = capsys.readouterr().out
    assert "1 completed, 0 failed, 1 retried" in out
    (record,) = ResultStore(store_path).point_records()
    assert record.attempt == 2


def test_cli_rejects_cache_plus_store(tmp_path, bench_experiment):
    with pytest.raises(SystemExit):
        runner.main(["bench", "--cache", str(tmp_path / "c"),
                     "--store", str(tmp_path / "s.sqlite")])


def test_cli_status_requires_a_target():
    with pytest.raises(SystemExit):
        runner.main(["status"])
