"""Tests for the parallel sweep engine and the experiment runner CLI."""

import json
import logging

import pytest

from repro.experiments import fig8_unwanted, fig9_colluding, runner, theorem_fairshare
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    derive_seed,
    execute_spec,
    merge_rows,
    register_point,
    resolve_point,
    run_sweep,
)


@register_point("_test_square")
def _square_point(seed=1, value=0, marker_file=None):
    """A trivial point function; optionally records that it actually ran."""
    if marker_file is not None:
        with open(marker_file, "a") as fh:
            fh.write("x")
    return {"seed": seed, "square": value * value}


@register_point("_test_faulty")
def _faulty_point(seed=1, value=0, marker_file=None):
    """Like ``_test_square`` but raises on negative values."""
    if value < 0:
        raise ValueError(f"cannot square a strictly negative value: {value}")
    return _square_point(seed=seed, value=value, marker_file=marker_file)


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

def test_spec_params_are_sorted_and_hashable():
    a = ScenarioSpec.make("_test_square", value=3, marker_file=None)
    b = ScenarioSpec.make("_test_square", marker_file=None, value=3)
    assert a == b
    assert hash(a) == hash(b)
    assert a.kwargs == {"value": 3, "marker_file": None}


def test_spec_cache_key_depends_on_params_and_seed():
    base = ScenarioSpec.make("_test_square", value=3)
    assert base.cache_key() == ScenarioSpec.make("_test_square", value=3).cache_key()
    assert base.cache_key() != ScenarioSpec.make("_test_square", value=4).cache_key()
    assert base.cache_key() != ScenarioSpec.make("_test_square", seed=2, value=3).cache_key()


def test_spec_freezes_nested_containers():
    spec = ScenarioSpec.make("_test_square", value=3, extras={"b": [1, 2], "a": 0})
    assert hash(spec) is not None
    assert spec.kwargs["extras"] == (("a", 0), ("b", (1, 2)))


def test_derive_seed_is_deterministic_and_spreads():
    assert derive_seed(1, "fig8", "25K") == derive_seed(1, "fig8", "25K")
    seeds = {derive_seed(1, "fig8", label) for label in ("25K", "50K", "100K", "200K")}
    assert len(seeds) == 4


def test_resolve_point_imports_experiment_modules():
    fn = resolve_point("fig8")
    assert fn is fig8_unwanted.run_point
    with pytest.raises(KeyError):
        resolve_point("no-such-experiment")


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def test_run_sweep_serial_preserves_spec_order():
    specs = [ScenarioSpec.make("_test_square", value=v) for v in (3, 1, 2)]
    results = run_sweep(specs, jobs=1)
    assert [r.spec for r in results] == specs
    assert [r.rows[0]["square"] for r in results] == [9, 1, 4]
    assert merge_rows(results) == [{"seed": 1, "square": 9},
                                   {"seed": 1, "square": 1},
                                   {"seed": 1, "square": 4}]


def test_run_sweep_parallel_rows_identical_to_serial():
    specs = [ScenarioSpec.make("_test_square", value=v, seed=v) for v in range(6)]
    serial = merge_rows(run_sweep(specs, jobs=1))
    parallel = merge_rows(run_sweep(specs, jobs=3))
    assert parallel == serial


def test_run_sweep_parallel_matches_serial_on_real_fluid_points():
    """A real experiment grid run through worker processes is byte-identical."""
    specs = [
        ScenarioSpec.make("theorem_fluid", strategy=strategy, intervals=60,
                          num_legitimate=4, num_malicious=8, capacity_bps=2e6)
        for strategy in ("always-on", "on-off", "slow-ramp")
    ]
    serial = merge_rows(run_sweep(specs, jobs=1))
    parallel = merge_rows(run_sweep(specs, jobs=2))
    assert [row.as_tuple() for row in parallel] == [row.as_tuple() for row in serial]
    assert parallel == serial


def test_execute_spec_wraps_single_row_in_list():
    result = execute_spec(ScenarioSpec.make("_test_square", value=5))
    assert result.rows == [{"seed": 1, "square": 25}]
    assert result.elapsed_s >= 0.0
    assert not result.cached
    assert result.error is None
    assert result.worker_id and ":" in result.worker_id


def test_execute_spec_raises_by_default_and_captures_on_request():
    spec = ScenarioSpec.make("_test_faulty", value=-3)
    with pytest.raises(ValueError):
        execute_spec(spec)
    result = execute_spec(spec, capture_errors=True)
    assert result.rows == []
    assert "strictly negative value: -3" in result.error


# ---------------------------------------------------------------------------
# Failure capture (one bad point must not sink the sweep)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 3])
def test_run_sweep_keeps_completed_points_when_one_raises(tmp_path, jobs):
    """Regression: under ``jobs > 1`` the old ``pool.map`` propagated the
    first exception and every completed point's work (and cache entry) was
    lost.  Now the bad point carries the traceback in ``error`` and every
    good point is returned *and cached*."""
    cache = SweepCache(str(tmp_path / "cache"))
    marker = tmp_path / "ran.txt"
    specs = [ScenarioSpec.make("_test_faulty", value=v, marker_file=str(marker))
             for v in (2, -1, 3, 4)]
    results = run_sweep(specs, jobs=jobs, cache=cache)
    assert [r.spec for r in results] == specs
    assert [r.error is None for r in results] == [True, False, True, True]
    assert "strictly negative value" in results[1].error
    assert results[1].rows == []
    assert merge_rows(results) == [{"seed": 1, "square": 4},
                                   {"seed": 1, "square": 9},
                                   {"seed": 1, "square": 16}]
    # The three good points were committed incrementally; only the bad one
    # re-runs on the next sweep.
    assert marker.read_text() == "xxx"
    rerun = run_sweep(specs, jobs=jobs, cache=cache)
    assert [r.cached for r in rerun] == [True, False, True, True]
    assert marker.read_text() == "xxx"


def test_run_sweep_strict_raises_after_committing_good_points(tmp_path):
    """Library callers (the figure modules' run() helpers) pass strict=True:
    a failed point raises instead of silently truncating the merged rows,
    but only *after* every completed point was committed to the cache."""
    from repro.experiments.sweep import SweepError

    cache = SweepCache(str(tmp_path / "cache"))
    specs = [ScenarioSpec.make("_test_faulty", value=v) for v in (2, -1, 3)]
    with pytest.raises(SweepError) as excinfo:
        run_sweep(specs, cache=cache, strict=True)
    assert "strictly negative value" in str(excinfo.value)
    assert [r.spec for r in excinfo.value.failures] == [specs[1]]
    assert cache.get(specs[0]) == [{"seed": 1, "square": 4}]
    assert cache.get(specs[2]) == [{"seed": 1, "square": 9}]


def test_figure_run_helpers_are_strict():
    """Every module-level run() consumes merged rows blind, so each must
    opt into strict sweeps — a failed point raises instead of producing a
    silently incomplete table."""
    import inspect

    from repro.experiments import (
        fig7_overhead, fig8_unwanted, fig9_colluding, fig10_parkinglot,
        fig11_onoff, fig12_deployment, theorem_fairshare,
    )

    for module in (fig7_overhead, fig8_unwanted, fig9_colluding,
                   fig10_parkinglot, fig11_onoff, fig12_deployment,
                   theorem_fairshare):
        assert "strict=True" in inspect.getsource(module.run), module.__name__


def test_run_sweep_captures_unknown_experiment_as_point_error():
    specs = [ScenarioSpec.make("_test_square", value=2),
             ScenarioSpec.make("_no_such_point"),
             ScenarioSpec.make("_test_square", value=3)]
    for jobs in (1, 2):
        results = run_sweep(specs, jobs=jobs)
        assert "_no_such_point" in results[1].error
        assert merge_rows(results) == [{"seed": 1, "square": 4},
                                       {"seed": 1, "square": 9}]


def test_execute_in_worker_warns_when_registering_module_is_missing(caplog):
    """Regression: a spawn-mode worker that cannot import the registering
    module used to swallow the ImportError silently, leaving only a cryptic
    registry miss."""
    from repro.experiments.sweep import _execute_in_worker

    spec = ScenarioSpec.make("_test_square", value=4)
    with caplog.at_level(logging.WARNING, logger="repro.experiments.sweep"):
        index, result = _execute_in_worker((7, spec, "repro.no_such_module"))
    assert index == 7
    assert result.rows == [{"seed": 1, "square": 16}]  # registry scan still works
    assert any("repro.no_such_module" in record.message
               for record in caplog.records)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def test_sweep_cache_round_trip(tmp_path):
    cache = SweepCache(str(tmp_path / "cache"))
    spec = ScenarioSpec.make("_test_square", value=7)
    assert cache.get(spec) is None
    cache.put(spec, [{"square": 49}])
    assert cache.get(spec) == [{"square": 49}]


def test_sweep_cache_rejects_rows_from_an_older_row_schema(tmp_path):
    """Cached rows pickled under an older dataclass layout must be a miss.

    Unpickling a dataclass bypasses ``__init__``, so without the schema
    check a row class that gained a field would be served from cache as a
    stale object missing the new attribute.
    """
    import dataclasses as dc

    import repro.experiments.sweep as sweep_mod

    @dc.dataclass
    class _Row:
        value: int

    # Pickle resolves the class through its module attribute; publish it.
    _Row.__qualname__ = "_CacheSchemaRow"
    _Row.__module__ = sweep_mod.__name__
    sweep_mod._CacheSchemaRow = _Row
    try:
        cache = SweepCache(str(tmp_path / "cache"))
        spec = ScenarioSpec.make("_test_square", value=11)
        cache.put(spec, [_Row(value=11)])
        assert cache.get(spec) == [_Row(value=11)]

        # The experiment evolves: the row dataclass gains a field.
        @dc.dataclass
        class _RowV2:
            value: int
            extra: float = 0.0

        _RowV2.__qualname__ = "_CacheSchemaRow"
        _RowV2.__module__ = sweep_mod.__name__
        sweep_mod._CacheSchemaRow = _RowV2

        assert cache.get(spec) is None  # stale schema must not be served
    finally:
        del sweep_mod._CacheSchemaRow


def test_sweep_cache_rejects_legacy_bare_list_payloads(tmp_path):
    """Entries written before the schema envelope existed are misses."""
    import pickle

    cache = SweepCache(str(tmp_path / "cache"))
    spec = ScenarioSpec.make("_test_square", value=12)
    with open(cache._path(spec), "wb") as fh:
        pickle.dump([{"square": 144}], fh)
    assert cache.get(spec) is None


def test_run_sweep_serves_repeat_runs_from_cache(tmp_path):
    cache = SweepCache(str(tmp_path / "cache"))
    marker = tmp_path / "ran.txt"
    specs = [ScenarioSpec.make("_test_square", value=v, marker_file=str(marker))
             for v in (2, 3)]
    first = run_sweep(specs, cache=cache)
    assert marker.read_text() == "xx"
    assert all(not r.cached for r in first)

    second = run_sweep(specs, cache=cache)
    assert marker.read_text() == "xx"  # nothing re-ran
    assert all(r.cached for r in second)
    assert merge_rows(second) == merge_rows(first)


# ---------------------------------------------------------------------------
# Grids
# ---------------------------------------------------------------------------

def test_fig8_grid_covers_every_scale_and_system():
    specs = fig8_unwanted.grid()
    assert len(specs) == len(fig8_unwanted.SCALE_STEPS) * len(fig8_unwanted.SYSTEMS)
    assert all(spec.experiment == "fig8" for spec in specs)
    labels = {spec.kwargs["scale_label"] for spec in specs}
    assert labels == {label for label, *_ in fig8_unwanted.SCALE_STEPS}


def test_fig9_grid_covers_both_workloads():
    specs = fig9_colluding.grid(scale_steps=fig9_colluding.SCALE_STEPS[:1])
    assert len(specs) == 2 * len(fig9_colluding.SYSTEMS)
    assert {spec.kwargs["workload"] for spec in specs} == {"longrun", "web"}


def test_theorem_grid_mixes_fluid_and_packet_points():
    specs = theorem_fairshare.grid()
    assert [spec.experiment for spec in specs] == [
        "theorem_fluid", "theorem_fluid", "theorem_fluid", "theorem_packet",
    ]


def test_runner_grids_exist_for_every_experiment():
    for name, experiment in runner.EXPERIMENTS.items():
        quick = experiment.build_grid(True)
        full = experiment.build_grid(False)
        assert quick, name
        assert len(quick) <= len(full)


# ---------------------------------------------------------------------------
# Runner CLI
# ---------------------------------------------------------------------------

def test_runner_list(capsys):
    assert runner.main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(runner.EXPERIMENTS)


def test_runner_rejects_bad_jobs_and_points():
    with pytest.raises(SystemExit):
        runner.main(["fig7", "--jobs", "0"])
    with pytest.raises(SystemExit):
        runner.main(["fig7", "--points", "0"])


def test_runner_json_points_limit(capsys):
    assert runner.main(["fig7", "--quick", "--points", "1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    entry = payload[0]
    assert entry["experiment"] == "fig7"
    assert entry["points"] == 1
    # One fig7 point measures all six (system, packet, router) combinations.
    assert len(entry["rows"]) == 6
    assert {"system", "packet_type", "router_type", "attack", "ns_per_packet"} \
        <= set(entry["rows"][0])


def test_runner_table_output_mentions_jobs(capsys):
    assert runner.main(["fig7", "--quick", "--points", "1", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 7" in out
    assert "--jobs 2" in out
