"""Tests for the botnet-scaling sweep (fig6_scaling over repro.topogen)."""

import pytest

from repro.experiments import fig6_scaling
from repro.experiments.runner import EXPERIMENTS
from repro.experiments.scenarios import (
    ASGraphScenarioConfig,
    run_asgraph_scenario,
)
from repro.experiments.sweep import merge_rows, run_sweep

#: Small-but-real scenario settings shared by the slow tests: a shrunk
#: control interval keeps several AIMD rounds inside a short simulation.
FAST = dict(sim_time=12.0, warmup=4.0, time_factor=0.25)


# ---------------------------------------------------------------------------
# Grid shape (the acceptance contract)
# ---------------------------------------------------------------------------

def test_quick_grid_spans_required_axes():
    specs = EXPERIMENTS["fig6_scaling"].build_grid(True)
    sizes = {spec.kwargs["num_as"] for spec in specs}
    botnets = {spec.kwargs["botnet_size"] for spec in specs}
    placements = {spec.kwargs["placement"] for spec in specs}
    systems = {spec.kwargs["system"] for spec in specs}
    assert len(sizes) >= 3
    assert len(botnets) >= 2
    assert len(placements) >= 2
    assert "netfence" in systems and systems - {"netfence"}


def test_grid_unions_the_two_axes_without_duplicates():
    specs = fig6_scaling.grid(systems=("netfence",), placements=("uniform",),
                              topology_sizes=(8, 16, 24), botnet_sizes=(100, 200),
                              size_ref=16, botnet_ref=100)
    points = [(s.kwargs["num_as"], s.kwargs["botnet_size"]) for s in specs]
    assert len(points) == len(set(points))
    assert set(points) == {(8, 100), (16, 100), (24, 100), (16, 200)}


def test_botnet_axis_changes_no_topology_point():
    a = fig6_scaling.grid(botnet_sizes=(10, 20))
    b = fig6_scaling.grid(botnet_sizes=(10, 30))
    top_a = {(s.kwargs["num_as"], s.kwargs["botnet_size"]) for s in a}
    assert (fig6_scaling.TOPOLOGY_SIZES[0], 10) in top_a


# ---------------------------------------------------------------------------
# Scenario behaviour
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def netfence_small():
    config = ASGraphScenarioConfig(system="netfence", num_as=10,
                                   botnet_size=2_000, seed=3, **FAST)
    return config, run_asgraph_scenario(config)


def test_netfence_installs_rate_limiters_under_attack(netfence_small):
    _, result = netfence_small
    assert result.limiter_state_total > 0
    assert result.limiter_state_max <= result.limiter_state_total
    assert 0.0 <= result.legit_share <= 1.0
    assert result.represented_bots == 2_000


def test_limiter_state_tracks_ases_not_bots():
    small = run_asgraph_scenario(ASGraphScenarioConfig(
        system="netfence", num_as=8, botnet_size=2_000, seed=3, **FAST))
    swarm = run_asgraph_scenario(ASGraphScenarioConfig(
        system="netfence", num_as=8, botnet_size=2_000_000, seed=3, **FAST))
    wide = run_asgraph_scenario(ASGraphScenarioConfig(
        system="netfence", num_as=20, botnet_size=2_000, seed=3, **FAST))
    # Three decades more bots: identical aggregated host count, so the
    # policing state cannot grow with the botnet...
    assert swarm.num_attacker_hosts == small.num_attacker_hosts
    assert swarm.limiter_state_total <= small.limiter_state_total * 1.5 + 2
    # ...while more ASes means proportionally more (bounded per-AS) state.
    assert wide.limiter_state_total > small.limiter_state_total


def test_attack_volume_is_capped_for_huge_botnets():
    config = ASGraphScenarioConfig(system="netfence", botnet_size=10**6)
    assert config.attack_total_bps == pytest.approx(
        config.attack_cap_multiple * config.bottleneck_bps)
    tiny = ASGraphScenarioConfig(system="netfence", botnet_size=10,
                                 per_bot_rate_bps=5_000.0)
    assert tiny.attack_total_bps == pytest.approx(50_000.0)


def test_config_validation():
    with pytest.raises(ValueError):
        ASGraphScenarioConfig(system="warp-drive")
    with pytest.raises(ValueError):
        ASGraphScenarioConfig(botnet_size=0)
    with pytest.raises(ValueError):
        ASGraphScenarioConfig(placement_model="nope")


# ---------------------------------------------------------------------------
# Point function + formatting round trip
# ---------------------------------------------------------------------------

def test_point_rows_are_deterministic_and_formattable():
    specs = fig6_scaling.grid(systems=("netfence", "fq"), placements=("uniform",),
                              topology_sizes=(10,), botnet_sizes=(2_000,),
                              size_ref=10, botnet_ref=2_000,
                              sim_time=10.0, warmup=4.0, seed=5)
    assert len(specs) == 2
    first = merge_rows(run_sweep(specs))
    second = merge_rows(run_sweep(specs))
    assert [row.as_tuple() for row in first] == [row.as_tuple() for row in second]
    assert first[0].graph_fingerprint == second[0].graph_fingerprint
    table = fig6_scaling.format_table(first)
    assert "fig6_scaling" in table and "netfence" in table and "fq" in table
