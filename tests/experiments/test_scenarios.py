"""Fast smoke tests of the scenario builders and experiment modules.

These use deliberately tiny topologies and short simulated times so the whole
file runs in well under a minute; the full-scale sweeps live in benchmarks/.
"""

import math

import pytest

from repro.experiments import fig7_overhead, theorem_fairshare
from repro.experiments.scenarios import (
    DumbbellScenarioConfig,
    ParkingLotScenarioConfig,
    run_dumbbell_scenario,
    run_parking_lot_scenario,
)


def tiny_dumbbell(system, **overrides):
    defaults = dict(
        system=system,
        num_source_as=2,
        hosts_per_as=2,
        bottleneck_bps=400e3,
        attack_rate_bps=200e3,
        num_colluders=2,
        sim_time=40.0,
        warmup=20.0,
        seed=1,
    )
    defaults.update(overrides)
    return DumbbellScenarioConfig(**defaults)


def test_invalid_config_values_rejected():
    with pytest.raises(ValueError):
        DumbbellScenarioConfig(system="nonsense")
    with pytest.raises(ValueError):
        DumbbellScenarioConfig(workload="nonsense")
    with pytest.raises(ValueError):
        DumbbellScenarioConfig(attack_type="nonsense")


def test_config_derived_quantities():
    config = DumbbellScenarioConfig(num_source_as=4, hosts_per_as=5,
                                    bottleneck_bps=2e6)
    assert config.num_senders == 20
    assert config.fair_share_bps == pytest.approx(1e5)
    assert config.legit_count_per_as == 1  # 25 % of 5, rounded


def test_netfence_colluding_scenario_produces_sane_metrics():
    result = run_dumbbell_scenario(tiny_dumbbell("netfence"))
    assert result.user_throughputs and result.attacker_throughputs
    assert 0.0 < result.bottleneck_utilization <= 1.0
    assert result.avg_attacker_throughput_bps < 300e3  # policed well below offered
    assert result.avg_user_throughput_bps > 0


def test_fq_colluding_scenario_runs():
    result = run_dumbbell_scenario(tiny_dumbbell("fq"))
    assert result.throughput_ratio > 0.3


def test_stopit_unwanted_scenario_blocks_attackers():
    # Measure after the victim's filters have propagated (install at ~1 s).
    config = tiny_dumbbell("stopit", victim_blocks_attackers=True, num_colluders=0,
                           workload="files", sim_time=30.0, warmup=5.0)
    result = run_dumbbell_scenario(config)
    assert result.avg_attacker_throughput_bps == 0.0
    assert result.completion_ratio > 0.9


def test_tva_unwanted_scenario_request_flood():
    config = tiny_dumbbell("tva", victim_blocks_attackers=True, num_colluders=0,
                           workload="files", attack_type="request",
                           sim_time=30.0, warmup=0.0)
    result = run_dumbbell_scenario(config)
    assert result.completion_ratio > 0.9
    assert not math.isnan(result.average_transfer_time)


def test_netfence_files_workload_records_transfers():
    config = tiny_dumbbell("netfence", workload="files", victim_blocks_attackers=True,
                           attack_type="request", num_colluders=0,
                           sim_time=30.0, warmup=0.0)
    result = run_dumbbell_scenario(config)
    assert sum(log.attempted for log in result.transfer_logs.values()) > 0
    assert result.completion_ratio > 0.9


def test_parking_lot_scenario_runs_all_policies():
    for policy in ("single", "multi", "inference"):
        config = ParkingLotScenarioConfig(
            hosts_per_group=3, l1_bps=400e3, l2_bps=600e3,
            attack_rate_bps=200e3, sim_time=30.0, warmup=15.0,
            netfence_policy=policy,
        )
        result = run_parking_lot_scenario(config)
        assert set(result.group_user_throughputs) == {"A", "B", "C"}
        assert result.avg_attacker("A") >= 0.0


def test_fig7_overhead_rows_cover_all_combinations():
    rows = fig7_overhead.run(iterations=50)
    assert len(rows) == 12
    assert all(row.ns_per_packet > 0 for row in rows)
    table = fig7_overhead.format_table(rows)
    assert "netfence" in table and "tva+" in table


def test_theorem_fluid_bound_satisfied():
    rows = theorem_fairshare.run_fluid(intervals=150, num_legitimate=5, num_malicious=15,
                                       capacity_bps=2e6)
    assert all(row.satisfied for row in rows)
    assert {row.attack_strategy for row in rows} == {"always-on", "on-off", "slow-ramp"}
