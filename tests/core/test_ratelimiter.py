"""Tests for the request token limiter and the leaky-bucket regular limiter."""

import pytest

from repro.core.feedback import Feedback, FeedbackAction, FeedbackMode
from repro.core.params import NetFenceParams
from repro.core.ratelimiter import CACHED, DROP, PASS, RegularRateLimiter, RequestRateLimiter
from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet, PacketType


def request_packet(priority):
    return Packet(src="s", dst="d", size_bytes=92, ptype=PacketType.REQUEST,
                  priority=priority)


def data_packet(size=1500):
    return Packet(src="s", dst="d", size_bytes=size, ptype=PacketType.REGULAR)


def incr_feedback(ts, link="L"):
    return Feedback(FeedbackMode.MON, link, FeedbackAction.INCR, ts=ts)


def decr_feedback(ts, link="L"):
    return Feedback(FeedbackMode.MON, link, FeedbackAction.DECR, ts=ts)


# ---------------------------------------------------------------------------
# RequestRateLimiter (§4.2, Fig. 15)
# ---------------------------------------------------------------------------

def test_level0_packets_never_rate_limited():
    limiter = RequestRateLimiter(NetFenceParams())
    assert all(limiter.admit(request_packet(0), now=0.0) for _ in range(1000))


def test_level_k_costs_doubling_tokens():
    params = NetFenceParams().with_overrides(request_token_depth=8.0)
    limiter = RequestRateLimiter(params)
    # Depth 8: a level-4 packet (cost 8) drains the bucket entirely.
    assert limiter.admit(request_packet(4), now=0.0)
    assert limiter.available_tokens == pytest.approx(0.0)
    assert not limiter.admit(request_packet(1), now=0.0)


def test_tokens_refill_over_time():
    params = NetFenceParams().with_overrides(request_token_depth=8.0)
    limiter = RequestRateLimiter(params)
    limiter.admit(request_packet(4), now=0.0)
    assert not limiter.admit(request_packet(4), now=0.001)
    # After 8 ms the bucket holds 8 tokens again (rate = 1 per ms).
    assert limiter.admit(request_packet(4), now=0.009)


def test_level1_rate_matches_l1_interval():
    limiter = RequestRateLimiter(NetFenceParams())
    admitted = sum(
        limiter.admit(request_packet(1), now=i * 0.0001) for i in range(5000)
    )
    # 5000 arrivals over 0.5 s at 1 token/ms ≈ 500 admissions + initial burst.
    assert admitted == pytest.approx(500, abs=1.2 * NetFenceParams().request_token_depth)


def test_higher_levels_admit_exponentially_fewer_packets():
    params = NetFenceParams().with_overrides(request_token_depth=1.0)
    low, high = RequestRateLimiter(params), RequestRateLimiter(params)
    low_admitted = sum(low.admit(request_packet(1), now=i * 0.0001) for i in range(20000))
    high_admitted = sum(high.admit(request_packet(3), now=i * 0.0001) for i in range(20000))
    assert low_admitted > 3 * high_admitted


def test_priority_clamped_to_max_level():
    params = NetFenceParams()
    limiter = RequestRateLimiter(params)
    crazy = request_packet(100)
    assert limiter.admit(crazy, now=10.0)  # clamped, affordable from a full bucket


# ---------------------------------------------------------------------------
# RegularRateLimiter (§4.3.3-4.3.4, Figs. 16-17)
# ---------------------------------------------------------------------------

@pytest.fixture
def limiter_rig():
    sim = Simulator()
    released = []
    params = NetFenceParams()
    limiter = RegularRateLimiter(sim, "s", "L", params, release_fn=released.append,
                                 initial_rate_bps=120_000.0)
    return sim, limiter, released


def test_first_packet_passes_immediately(limiter_rig):
    sim, limiter, _ = limiter_rig
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert limiter.police(data_packet()) == PASS


def test_burst_is_cached_and_released_at_rate(limiter_rig):
    sim, limiter, released = limiter_rig
    sim.schedule(1.0, lambda: None)
    sim.run()  # advance clock so the first packet has credit
    verdicts = [limiter.police(data_packet()) for _ in range(4)]
    assert verdicts[0] == PASS
    assert all(v == CACHED for v in verdicts[1:])
    sim.run(until=sim.now + 1.0)
    # At 120 Kbps, 1500-byte packets leave every 0.1 s: all three within 1 s.
    assert len(released) == 3


def test_release_times_respect_rate(limiter_rig):
    sim, limiter, released = limiter_rig
    times = []
    limiter.release_fn = lambda packet: times.append(sim.now)
    sim.schedule(1.0, lambda: None)
    sim.run()
    for _ in range(3):
        limiter.police(data_packet())
    sim.run(until=10.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(gap == pytest.approx(0.1, abs=0.02) for gap in gaps)


def test_excessive_backlog_dropped(limiter_rig):
    sim, limiter, _ = limiter_rig
    sim.schedule(1.0, lambda: None)
    sim.run()
    verdicts = [limiter.police(data_packet()) for _ in range(100)]
    assert DROP in verdicts
    assert limiter.stats.dropped > 0


def test_leaky_bucket_does_not_accumulate_idle_credit(limiter_rig):
    """Unlike a token bucket, a long idle period must not allow a burst."""
    sim, limiter, _ = limiter_rig
    sim.schedule(100.0, lambda: None)
    sim.run()  # 100 s of idleness
    verdicts = [limiter.police(data_packet()) for _ in range(10)]
    # Only the head packet passes; the rest must wait in the cache.
    assert verdicts.count(PASS) == 1


def _feed_steadily(sim, limiter, interval=0.08, until=2.0):
    """Offer one packet every ``interval`` seconds so the limiter stays busy."""

    def feed():
        limiter.police(data_packet())
        if sim.now + interval < until:
            sim.schedule(interval, feed)

    sim.schedule(0.0, feed)
    sim.run(until=until)


def test_aimd_increase_requires_fresh_incr_and_half_utilization(limiter_rig):
    sim, limiter, _ = limiter_rig
    start_rate = limiter.rate_bps
    # Fresh incr feedback + sustained traffic above rlim/2 for the interval.
    limiter.update_status(incr_feedback(ts=0.1))
    _feed_steadily(sim, limiter)
    assert limiter.adjust() == "increase"
    assert limiter.rate_bps == pytest.approx(start_rate + 12_000)


def test_aimd_holds_when_underutilized(limiter_rig):
    sim, limiter, _ = limiter_rig
    start_rate = limiter.rate_bps
    sim.schedule(0.5, lambda: None)
    sim.run()
    limiter.update_status(incr_feedback(ts=sim.now))
    limiter.police(data_packet(size=200))  # tiny amount of traffic
    sim.run(until=2.0)
    assert limiter.adjust() == "keep"
    assert limiter.rate_bps == pytest.approx(start_rate)


def test_aimd_decreases_without_incr_feedback(limiter_rig):
    sim, limiter, _ = limiter_rig
    start_rate = limiter.rate_bps
    limiter.update_status(decr_feedback(ts=0.1))
    assert limiter.adjust() == "decrease"
    assert limiter.rate_bps == pytest.approx(start_rate * 0.9)


def test_stale_incr_feedback_does_not_count(limiter_rig):
    """Feedback older than the control interval start cannot set hasIncr."""
    sim, limiter, _ = limiter_rig
    sim.schedule(5.0, lambda: None)
    sim.run()
    limiter.adjust()  # start a new interval at t=5
    limiter.update_status(incr_feedback(ts=1.0))  # stale
    assert limiter.adjust() == "decrease"


def test_repeated_decreases_are_multiplicative(limiter_rig):
    sim, limiter, _ = limiter_rig
    start_rate = limiter.rate_bps
    for _ in range(5):
        limiter.adjust()
    assert limiter.rate_bps == pytest.approx(start_rate * 0.9 ** 5)


def test_idle_tracking_for_limiter_teardown(limiter_rig):
    sim, limiter, _ = limiter_rig
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert limiter.idle_for() == pytest.approx(10.0)
    limiter.update_status(decr_feedback(ts=sim.now))
    assert limiter.idle_for() == pytest.approx(0.0)


def test_close_releases_cached_packets(limiter_rig):
    sim, limiter, released = limiter_rig
    sim.schedule(1.0, lambda: None)
    sim.run()
    for _ in range(3):
        limiter.police(data_packet())
    limiter.close()
    assert len(released) == 2  # the cached packets, flushed on close
    assert limiter.queue_length == 0


def test_inference_adjustment_keeps_rate_for_inferred_only_activity(limiter_rig):
    """Appendix B.2 rule 3: only inferred activity -> hold the rate."""
    sim, limiter, _ = limiter_rig
    start = limiter.rate_bps
    limiter.update_inferred_status(decr_feedback(ts=0.1, link="other"))
    assert limiter.adjust_with_inference() == "keep"
    assert limiter.rate_bps == pytest.approx(start)


def test_inference_adjustment_increases_on_inferred_incr(limiter_rig):
    sim, limiter, _ = limiter_rig
    start = limiter.rate_bps
    limiter.update_inferred_status(incr_feedback(ts=0.1, link="other"))
    _feed_steadily(sim, limiter)
    assert limiter.adjust_with_inference() == "increase"
    assert limiter.rate_bps > start


# ---------------------------------------------------------------------------
# Leaky-bucket accounting regressions
# ---------------------------------------------------------------------------

def test_sustained_small_packet_goodput_tracks_rate_limit():
    """Fractional accrued credit must survive the pass path (§4.3.3).

    Bursts of sub-MTU packets offered at exactly ``rate_bps`` have to be
    forwarded at ``rate_bps``.  The pre-fix code reset ``_last_departure`` to
    ``now`` on every pass, discarding the rest of the burst's accrued credit;
    with a constrained cache most of each burst was then dropped and the
    sustained goodput collapsed far below the rate limit.
    """
    sim = Simulator()
    params = NetFenceParams().with_overrides(max_caching_delay=0.02,
                                             min_cache_bytes=300)
    limiter = RegularRateLimiter(sim, "s", "L", params, release_fn=lambda p: None,
                                 initial_rate_bps=120_000.0)
    burst, size, gap = 8, 150, 0.08   # 8 pkts x 1200 bits / 0.08 s = 120 kbps
    cycles = 500

    def offer():
        for _ in range(burst):
            limiter.police(data_packet(size=size))

    for k in range(cycles):
        sim.schedule(1.0 + k * gap, offer)
    sim.run(until=1.0 + cycles * gap)
    goodput_bps = limiter.stats.bytes_forwarded * 8 / (cycles * gap)
    assert goodput_bps == pytest.approx(limiter.rate_bps, rel=0.01)


def test_idle_credit_still_capped_at_one_mtu_of_small_packets():
    """Banked credit never exceeds the configured bucket depth."""
    sim = Simulator()
    params = NetFenceParams()
    limiter = RegularRateLimiter(sim, "s", "L", params, release_fn=lambda p: None,
                                 initial_rate_bps=120_000.0)
    sim.schedule(1000.0, lambda: None)
    sim.run()  # a very long idle period
    verdicts = [limiter.police(data_packet(size=150)) for _ in range(100)]
    # depth 1500 B / 150 B = at most 10 packets can pass from banked credit.
    assert verdicts.count(PASS) == params.leaky_bucket_depth_bytes // 150


def test_close_updates_release_and_forwarding_counters(limiter_rig):
    sim, limiter, released = limiter_rig
    sim.schedule(1.0, lambda: None)
    sim.run()
    for _ in range(3):
        limiter.police(data_packet())
    assert limiter.stats.released == 0
    forwarded_before = limiter.stats.bytes_forwarded
    limiter.close()
    # The two cached packets were flushed through release_fn, so they must be
    # counted exactly like ordinary releases.
    assert len(released) == 2
    assert limiter.stats.released == 2
    assert limiter.stats.bytes_forwarded == forwarded_before + 2 * 1500
