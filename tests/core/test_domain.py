"""Tests for the shared NetFence deployment state."""

import pytest

from repro.core.domain import NetFenceDomain


def test_link_registration_and_lookup():
    domain = NetFenceDomain(master=b"m")
    domain.register_link("L1", "AS-core")
    assert domain.as_for_link("L1") == "AS-core"
    assert domain.as_for_link("unknown") is None
    assert domain.as_for_link(None) is None


def test_registered_links_snapshot_is_a_copy():
    domain = NetFenceDomain(master=b"m")
    domain.register_link("L1", "AS-core")
    snapshot = domain.registered_links
    snapshot["L2"] = "AS-other"
    assert domain.as_for_link("L2") is None


def test_default_feedback_mode_is_single():
    assert NetFenceDomain(master=b"m").feedback_mode == "single"


def test_invalid_feedback_mode_rejected():
    with pytest.raises(ValueError):
        NetFenceDomain(master=b"m", feedback_mode="bogus")


def test_key_registry_shared_semantics():
    domain = NetFenceDomain(master=b"m")
    assert domain.key_registry.key_for("A", "B") == domain.key_registry.key_for("B", "A")
