"""Tests for §4.5: per-AS policing and heavy-hitter detection."""

import pytest

from repro.core.aslevel import HeavyHitterDetector, PerASRateLimiter, max_min_fair_shares
from repro.simulator.packet import Packet


def packet(src_as, size=1500):
    return Packet(src=f"h-{src_as}", dst="d", size_bytes=size, src_as=src_as)


# ---------------------------------------------------------------------------
# max-min fair shares
# ---------------------------------------------------------------------------

def test_max_min_equal_demands_split_evenly():
    shares = max_min_fair_shares(90.0, {"a": 100.0, "b": 100.0, "c": 100.0})
    assert all(share == pytest.approx(30.0) for share in shares.values())


def test_max_min_small_demand_fully_satisfied():
    shares = max_min_fair_shares(90.0, {"small": 10.0, "big1": 100.0, "big2": 100.0})
    assert shares["small"] == pytest.approx(10.0)
    assert shares["big1"] == pytest.approx(40.0)
    assert shares["big2"] == pytest.approx(40.0)


def test_max_min_total_never_exceeds_capacity():
    shares = max_min_fair_shares(100.0, {"a": 70.0, "b": 80.0, "c": 5.0})
    assert sum(shares.values()) <= 100.0 + 1e-6


def test_max_min_empty_demands():
    assert max_min_fair_shares(100.0, {}) == {}


def test_max_min_negative_capacity_rejected():
    with pytest.raises(ValueError):
        max_min_fair_shares(-1.0, {"a": 1.0})


def test_max_min_zero_capacity_allocates_nothing():
    shares = max_min_fair_shares(0.0, {"a": 10.0, "b": 20.0})
    assert shares == {"a": 0.0, "b": 0.0}


def test_max_min_single_demand_below_capacity_is_fully_satisfied():
    assert max_min_fair_shares(100.0, {"solo": 30.0}) == {"solo": 30.0}


def test_max_min_single_demand_above_capacity_is_capped():
    assert max_min_fair_shares(100.0, {"solo": 250.0}) == {"solo": 100.0}


def test_max_min_zero_demand_entry_costs_nothing():
    shares = max_min_fair_shares(90.0, {"idle": 0.0, "busy": 500.0})
    assert shares["idle"] == 0.0
    assert shares["busy"] == pytest.approx(90.0)


# ---------------------------------------------------------------------------
# PerASRateLimiter
# ---------------------------------------------------------------------------

def test_per_as_rate_limiter_throttles_heavy_as():
    limiter = PerASRateLimiter(capacity_bps=1.2e5, interval_s=1.0)
    # Interval 1: observe demand (heavy AS1, light AS2), then recompute.
    for _ in range(100):
        limiter.observe_demand(packet("AS1"))
    for _ in range(5):
        limiter.observe_demand(packet("AS2"))
    limiter.recompute()
    assert limiter.shares_bps["AS1"] < 100 * 1500 * 8
    # Interval 2: AS1 floods again; it must be cut off at its budget.
    admitted = sum(limiter.admit(packet("AS1")) for _ in range(100))
    assert admitted < 100
    assert limiter.dropped > 0


def test_per_as_rate_limiter_admits_unknown_as():
    limiter = PerASRateLimiter(capacity_bps=1e6)
    assert limiter.admit(packet("brand-new-AS"))


def test_per_as_rate_limiter_light_as_unaffected():
    limiter = PerASRateLimiter(capacity_bps=1.2e5, interval_s=1.0)
    for _ in range(100):
        limiter.observe_demand(packet("AS1"))
    for _ in range(5):
        limiter.observe_demand(packet("AS2"))
    limiter.recompute()
    # AS2 demanded well under its fair share, so its whole demand fits in the
    # next interval's budget.
    assert all(limiter.admit(packet("AS2")) for _ in range(3))


def test_per_as_rate_limiter_invalid_capacity():
    with pytest.raises(ValueError):
        PerASRateLimiter(capacity_bps=0)


# ---------------------------------------------------------------------------
# HeavyHitterDetector (RED-PD style)
# ---------------------------------------------------------------------------

def run_intervals(detector, offered, intervals):
    """Offer `offered[as_name]` packets per interval for several intervals."""
    for _ in range(intervals):
        for as_name, count in offered.items():
            for _ in range(count):
                detector.observe(packet(as_name))
        detector.end_interval()


def test_heavy_hitter_detected_after_persistent_offense():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=3)
    run_intervals(detector, {"compromised": 100, "good1": 5, "good2": 5}, intervals=3)
    assert "compromised" in detector.throttled
    assert "good1" not in detector.throttled


def test_heavy_hitter_throttled_to_fair_share():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=1)
    run_intervals(detector, {"compromised": 200, "good": 5}, intervals=2)
    allowed = sum(detector.admit(packet("compromised")) for _ in range(200))
    assert allowed < 200
    assert all(detector.admit(packet("good")) for _ in range(3))


def test_heavy_hitter_forgiven_after_good_behaviour():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=1, forgive_intervals=2)
    run_intervals(detector, {"noisy": 200, "good": 5}, intervals=2)
    assert "noisy" in detector.throttled
    run_intervals(detector, {"noisy": 2, "good": 5}, intervals=3)
    assert "noisy" not in detector.throttled


def test_single_burst_does_not_trigger_detection():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=3)
    run_intervals(detector, {"bursty": 200, "good": 5}, intervals=1)
    run_intervals(detector, {"bursty": 2, "good": 5}, intervals=3)
    assert "bursty" not in detector.throttled


def test_detector_invalid_capacity():
    with pytest.raises(ValueError):
        HeavyHitterDetector(capacity_bps=0)


# ---------------------------------------------------------------------------
# Interval rollover (the per-AS aggregation of repro.topogen leans on this:
# an aggregated host's whole-AS traffic must be re-budgeted every interval)
# ---------------------------------------------------------------------------

def test_throttle_budget_replenishes_each_interval():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=1)
    run_intervals(detector, {"hog": 200, "good": 5}, intervals=2)
    assert "hog" in detector.throttled
    # Exhaust the first interval's budget completely...
    while detector.admit(packet("hog")):
        pass
    assert not detector.admit(packet("hog"))
    # ...then the rollover must grant a fresh fair-share budget, not leave
    # the AS starved on the stale exhausted one.
    detector.end_interval()
    assert detector.admit(packet("hog"))


def test_rollover_clears_per_interval_observations():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=2)
    # One heavy interval, then silence: the heavy bytes must not leak into
    # the next interval's rate estimate and keep the offense streak alive.
    run_intervals(detector, {"bursty": 200}, intervals=1)
    run_intervals(detector, {"bursty": 1, "other": 1}, intervals=1)
    assert detector._offense_streak["bursty"] == 0
    assert "bursty" not in detector.throttled


def test_forgiven_as_loses_its_throttle_budget_entry():
    detector = HeavyHitterDetector(capacity_bps=1.2e6, interval_s=1.0,
                                   trigger_intervals=1, forgive_intervals=1)
    run_intervals(detector, {"noisy": 200, "good": 5}, intervals=2)
    assert "noisy" in detector.throttled
    run_intervals(detector, {"noisy": 1, "good": 5}, intervals=2)
    assert "noisy" not in detector.throttled
    # Unthrottled ASes are admitted without consulting any stale budget.
    assert all(detector.admit(packet("noisy")) for _ in range(200))
