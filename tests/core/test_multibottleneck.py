"""Tests for the multi-bottleneck policing policies (§4.3.5, Appendix B)."""

import pytest

from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.core.header import NetFenceHeader, get_netfence_header
from repro.core.multibottleneck import InferencePolicy, MultiFeedbackPolicy
from repro.simulator.packet import Packet, PacketType
from repro.simulator.topology import Topology


def build_two_bottleneck_path(params, domain, policy_factory):
    """src -- Ra == R1 --L1-- R2 --L2-- R3 == dst with both links in mon."""
    topo = Topology()
    sim = topo.clock
    qf = netfence_queue_factory(sim, params)
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    access = topo.add_router("Ra", as_name="AS-src", router_cls=NetFenceAccessRouter,
                             domain=domain, policy_factory=policy_factory)
    topo.add_router("R1", as_name="AS-1", router_cls=NetFenceRouter, domain=domain,
                    force_mon=True)
    topo.add_router("R2", as_name="AS-2", router_cls=NetFenceRouter, domain=domain,
                    force_mon=True)
    topo.add_duplex_link("src", "Ra", 10e6, 0.001)
    topo.add_duplex_link("Ra", "R1", 10e6, 0.001)
    topo.add_duplex_link("R1", "R2", 1e6, 0.001, queue_factory=qf)
    topo.add_duplex_link("R2", "dst", 1e6, 0.001, queue_factory=qf)
    topo.finalize()
    return topo, access


def regular_packet(feedback):
    packet = Packet(src="src", dst="dst", size_bytes=1500, ptype=PacketType.REGULAR,
                    flow_id="f", src_as="AS-src")
    packet.set_header("netfence", NetFenceHeader(feedback=feedback))
    return packet


@pytest.fixture
def multi_rig(params):
    domain = NetFenceDomain(params=params, master=b"multi", feedback_mode="multi")
    return build_two_bottleneck_path(params, domain, MultiFeedbackPolicy)


def test_multi_feedback_chain_grows_across_bottlenecks(multi_rig):
    topo, access = multi_rig
    # Send a request packet end to end; both mon-state links append feedback.
    packet = Packet(src="src", dst="dst", size_bytes=92, ptype=PacketType.REQUEST,
                    flow_id="f", src_as="AS-src")
    packet.set_header("netfence", NetFenceHeader())
    received = []
    topo.host("dst").default_agent = type("Sink", (), {
        "on_packet": staticmethod(lambda p: received.append(p))})()
    topo.host("src").receive = lambda p, l: None  # ignore any return traffic
    access.receive(packet, topo.link_between("src", "Ra"))
    topo.run(until=1.0)
    assert received
    chain = get_netfence_header(received[0]).feedback.chain
    assert chain is not None and len(chain) == 2
    links = [entry[0] for entry in chain]
    assert links == ["R1->R2", "R2->dst"]


def test_multi_feedback_policed_by_all_on_path_limiters(multi_rig):
    topo, access = multi_rig
    # Build a returned chain feedback exactly as a receiver would return it.
    initial = access.policy.stamp_initial(
        Packet(src="src", dst="dst", flow_id="f", src_as="AS-src"))
    from repro.core.feedback import FeedbackAction, multi_append
    chain = multi_append(access.domain.key_registry, "AS-1", "AS-src", initial,
                         "src", "dst", "R1->R2", FeedbackAction.INCR)
    chain = multi_append(access.domain.key_registry, "AS-2", "AS-src", chain,
                         "src", "dst", "R2->dst", FeedbackAction.INCR)
    packet = regular_packet(chain)
    chains_at_forward = []
    access.forward_tap = lambda p, link: chains_at_forward.append(
        tuple(get_netfence_header(p).feedback.chain or ()))
    verdict = access.admit_from_host(packet, topo.link_between("src", "Ra"))
    # Fresh limiters cache the first packet; both limiters must now exist.
    assert verdict in (True, None)
    assert access.limiter_for("src", "R1->R2") is not None
    assert access.limiter_for("src", "R2->dst") is not None
    topo.run(until=1.0)
    assert chains_at_forward
    # The access router resets the header to a fresh, empty chain (Appendix
    # B.1); downstream bottlenecks re-append their feedback afterwards.
    assert chains_at_forward[0] == ()


@pytest.fixture
def inference_rig(params):
    domain = NetFenceDomain(params=params, master=b"infer")
    return build_two_bottleneck_path(params, domain, InferencePolicy)


def test_inference_policy_builds_destination_cache(inference_rig):
    topo, access = inference_rig
    fb1 = access.stamper.stamp_incr("src", "dst", "R1->R2", topo.clock.now)
    access.admit_from_host(regular_packet(fb1), topo.link_between("src", "Ra"))
    fb2 = access.stamper.stamp_incr("src", "dst", "R2->dst", topo.clock.now)
    access.admit_from_host(regular_packet(fb2), topo.link_between("src", "Ra"))
    cache = access.policy.destination_cache["dst"]
    assert cache == {"R1->R2", "R2->dst"}
    # Both limiters now exist even though each packet carried one feedback.
    assert access.limiter_for("src", "R1->R2") is not None
    assert access.limiter_for("src", "R2->dst") is not None


def test_inference_policy_restamps_lowest_rate_link(inference_rig):
    topo, access = inference_rig
    fb1 = access.stamper.stamp_incr("src", "dst", "R1->R2", topo.clock.now)
    access.admit_from_host(regular_packet(fb1), topo.link_between("src", "Ra"))
    fb2 = access.stamper.stamp_incr("src", "dst", "R2->dst", topo.clock.now)
    access.admit_from_host(regular_packet(fb2), topo.link_between("src", "Ra"))
    # Make one limiter much slower; the next packet must be restamped with it.
    access.limiter_for("src", "R1->R2").rate_bps = 10_000.0
    access.limiter_for("src", "R2->dst").rate_bps = 500_000.0
    packet = regular_packet(access.stamper.stamp_incr("src", "dst", "R2->dst", topo.clock.now))
    verdict = access.admit_from_host(packet, topo.link_between("src", "Ra"))
    if verdict is True:
        assert get_netfence_header(packet).feedback.link == "R1->R2"
    else:
        # The packet may be cached by the slow limiter; it is restamped on release.
        assert verdict is None


def test_inference_updates_inferred_state_of_silent_limiter(inference_rig):
    topo, access = inference_rig
    fb1 = access.stamper.stamp_incr("src", "dst", "R1->R2", topo.clock.now)
    access.admit_from_host(regular_packet(fb1), topo.link_between("src", "Ra"))
    fb2 = access.stamper.stamp_incr("src", "dst", "R2->dst", topo.clock.now)
    access.admit_from_host(regular_packet(fb2), topo.link_between("src", "Ra"))
    silent = access.limiter_for("src", "R1->R2")
    # The second packet carried R2's feedback, so R1's limiter saw it only as
    # inferred state.
    assert silent.is_active_star or silent.has_incr_star
