"""Tests for the Fig. 3 parameter set."""

import pytest

from repro.core.params import DEFAULT_PARAMS, NetFenceParams


def test_fig3_values():
    p = NetFenceParams()
    assert p.l1_interval == pytest.approx(0.001)       # one level-1 packet per 1 ms
    assert p.control_interval == pytest.approx(2.0)    # Ilim
    assert p.feedback_expiration == pytest.approx(4.0)  # w
    assert p.additive_increase_bps == pytest.approx(12_000)  # Δ
    assert p.multiplicative_decrease == pytest.approx(0.1)   # δ
    assert p.loss_threshold == pytest.approx(0.02)      # p_th
    assert p.queue_limit_seconds == pytest.approx(0.2)  # Qlim
    assert p.red_minthresh_fraction == pytest.approx(0.5)
    assert p.red_maxthresh_fraction == pytest.approx(0.75)
    assert p.red_wq == pytest.approx(0.1)


def test_request_token_rate_derived_from_l1():
    assert NetFenceParams().request_token_rate == pytest.approx(1000.0)


def test_hysteresis_is_two_control_intervals():
    p = NetFenceParams()
    assert p.hysteresis_duration == pytest.approx(2 * p.control_interval)


def test_scaled_shrinks_time_constants():
    p = NetFenceParams().scaled(0.5)
    assert p.control_interval == pytest.approx(1.0)
    assert p.feedback_expiration == pytest.approx(2.0)
    assert p.hysteresis_duration == pytest.approx(2.0)
    # Non-time constants are untouched.
    assert p.additive_increase_bps == pytest.approx(12_000)


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(ValueError):
        NetFenceParams().scaled(0.0)


def test_with_overrides_returns_modified_copy():
    base = NetFenceParams()
    changed = base.with_overrides(multiplicative_decrease=0.5)
    assert changed.multiplicative_decrease == 0.5
    assert base.multiplicative_decrease == 0.1


def test_params_are_immutable():
    with pytest.raises(Exception):
        NetFenceParams().control_interval = 5.0  # type: ignore[misc]


def test_default_params_singleton_matches_fresh_instance():
    assert DEFAULT_PARAMS == NetFenceParams()


def test_max_priority_level_is_affordable():
    # The highest level's token cost must not exceed the bucket depth,
    # otherwise a waiting sender could pick a level it can never pay for.
    p = NetFenceParams()
    assert 2 ** (p.max_priority_level - 1) <= p.request_token_depth
