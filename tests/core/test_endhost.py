"""Tests for the NetFence end-host shim (feedback presentation and return)."""

import pytest

from repro.core.endhost import NetFenceEndHost, ReturnPolicy
from repro.core.feedback import Feedback, FeedbackAction, FeedbackMode
from repro.core.header import NetFenceHeader, get_netfence_header
from repro.core.params import NetFenceParams
from repro.simulator.engine import Simulator
from repro.simulator.node import Host
from repro.simulator.packet import Packet, PacketType


class LoopbackHost(Host):
    """A host whose access link is replaced by a capture list."""

    def __init__(self, sim, name):
        super().__init__(sim, name, as_name=f"AS-{name}")
        self.sent = []

    @property
    def access_link(self):  # type: ignore[override]
        host = self

        class _FakeLink:
            def send(self, packet):
                host.sent.append(packet)

        return _FakeLink()


def incr(ts, link="L"):
    return Feedback(FeedbackMode.MON, link, FeedbackAction.INCR, ts=ts, mac=b"abcd")


def decr(ts, link="L"):
    return Feedback(FeedbackMode.MON, link, FeedbackAction.DECR, ts=ts, mac=b"abcd")


def nop(ts):
    return Feedback(FeedbackMode.NOP, None, FeedbackAction.INCR, ts=ts, mac=b"abcd")


@pytest.fixture
def rig():
    sim = Simulator()
    host = LoopbackHost(sim, "alice")
    endhost = NetFenceEndHost(sim, host, params=NetFenceParams())
    return sim, host, endhost


def receive_with_returned(endhost, host, feedback, src="bob", flow_id="f1"):
    packet = Packet(src=src, dst=host.name, flow_id=flow_id)
    packet.set_header("netfence", NetFenceHeader(returned=feedback))
    host.receive(packet, None)


def test_packet_without_feedback_becomes_request(rig):
    sim, host, endhost = rig
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    assert host.sent[0].is_request
    header = get_netfence_header(host.sent[0])
    assert header is not None and header.feedback is None


def test_request_priority_escalates_with_waiting_time(rig):
    sim, host, endhost = rig
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    assert host.sent[0].priority == 0
    sim.schedule(1.0, lambda: None)
    sim.run()
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    # One second of waiting buys roughly level 10 (§6.3.1).
    assert host.sent[1].priority == 10


def test_fresh_feedback_turns_packets_regular(rig):
    sim, host, endhost = rig
    receive_with_returned(endhost, host, incr(ts=0.0))
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    packet = host.sent[0]
    assert packet.is_regular
    assert get_netfence_header(packet).feedback.is_incr


def test_presentation_prefers_unexpired_incr_over_newer_decr(rig):
    sim, host, endhost = rig
    receive_with_returned(endhost, host, incr(ts=0.0))
    receive_with_returned(endhost, host, decr(ts=1.0))
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    assert get_netfence_header(host.sent[0]).feedback.is_incr


def test_presentation_uses_most_recent_between_nop_and_decr(rig):
    sim, host, endhost = rig
    receive_with_returned(endhost, host, nop(ts=0.0))
    receive_with_returned(endhost, host, decr(ts=1.0))
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    assert get_netfence_header(host.sent[0]).feedback.is_decr


def test_expired_feedback_not_presented(rig):
    sim, host, endhost = rig
    receive_with_returned(endhost, host, incr(ts=0.0))
    sim.schedule(10.0, lambda: None)
    sim.run()  # w = 4 s, feedback from t=0 has expired
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    assert host.sent[0].is_request


def test_forward_feedback_is_returned_to_peer(rig):
    sim, host, endhost = rig
    inbound = Packet(src="bob", dst="alice", flow_id="f1")
    inbound.set_header("netfence", NetFenceHeader(feedback=decr(ts=0.5)))
    host.receive(inbound, None)
    host.send(Packet(src="alice", dst="bob", flow_id="f1"))
    header = get_netfence_header(host.sent[0])
    assert header.returned is not None and header.returned.is_decr


def test_return_policy_blocks_capability_for_unwanted_sender(rig):
    """§3.3: a victim suppresses attack traffic by never returning feedback."""
    sim, host, _ = rig
    victim_host = LoopbackHost(sim, "victim")
    NetFenceEndHost(sim, victim_host, params=NetFenceParams(),
                    return_policy=ReturnPolicy(blocked={"mallory"}))
    inbound = Packet(src="mallory", dst="victim", flow_id="f1")
    inbound.set_header("netfence", NetFenceHeader(feedback=incr(ts=0.0)))
    victim_host.receive(inbound, None)
    victim_host.send(Packet(src="victim", dst="mallory", flow_id="f1"))
    assert get_netfence_header(victim_host.sent[0]).returned is None


def test_hide_decr_strategy_presents_nothing_when_only_decr_known(rig):
    sim = Simulator()
    host = LoopbackHost(sim, "attacker")
    endhost = NetFenceEndHost(sim, host, params=NetFenceParams(),
                              presentation_strategy="hide_decr")
    receive_with_returned(endhost, host, decr(ts=0.0))
    host.send(Packet(src="attacker", dst="bob", flow_id="f1"))
    # Hiding L↓ leaves the attacker with nothing valid: the packet is demoted.
    assert host.sent[0].is_request


def test_dedicated_feedback_packets_for_one_way_flows():
    sim = Simulator()
    host = LoopbackHost(sim, "colluder")
    endhost = NetFenceEndHost(sim, host, params=NetFenceParams(),
                              send_feedback_packets=True,
                              feedback_packet_interval=0.1)
    inbound = Packet(src="attacker", dst="colluder", flow_id="udp:1")
    inbound.set_header("netfence", NetFenceHeader(feedback=decr(ts=0.0)))
    host.receive(inbound, None)
    sim.run(until=0.3)
    feedback_packets = [p for p in host.sent if p.protocol == "netfence-fb"]
    assert feedback_packets
    assert get_netfence_header(feedback_packets[0]).returned.is_decr


def test_feedback_packets_swallowed_on_receive():
    sim = Simulator()
    host = LoopbackHost(sim, "attacker")
    NetFenceEndHost(sim, host, params=NetFenceParams())
    fb_packet = Packet(src="colluder", dst="attacker", flow_id="fb:x",
                       protocol="netfence-fb")
    fb_packet.set_header("netfence", NetFenceHeader(returned=incr(ts=0.0)))
    host.receive(fb_packet, None)
    assert host.orphan_packets == 0


def test_per_flow_feedback_isolation():
    sim = Simulator()
    host = LoopbackHost(sim, "alice")
    endhost = NetFenceEndHost(sim, host, params=NetFenceParams(), per_flow_feedback=True)
    receive_with_returned(endhost, host, incr(ts=0.0), flow_id="flow-1")
    # A different flow to the same peer must bootstrap on its own.
    host.send(Packet(src="alice", dst="bob", flow_id="flow-2"))
    assert host.sent[0].is_request
    host.send(Packet(src="alice", dst="bob", flow_id="flow-1"))
    assert host.sent[1].is_regular


def test_legacy_packets_untouched(rig):
    sim, host, endhost = rig
    host.send(Packet(src="alice", dst="bob", ptype=PacketType.LEGACY))
    assert host.sent[0].is_legacy
    assert get_netfence_header(host.sent[0]) is None
