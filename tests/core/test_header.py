"""Tests for the NetFence header wire format (Fig. 6)."""

from repro.core.feedback import Feedback, FeedbackAction, FeedbackMode
from repro.core.header import NetFenceHeader, ensure_netfence_header, get_netfence_header
from repro.simulator.packet import Packet


def nop(ts=1.0):
    return Feedback(FeedbackMode.NOP, None, FeedbackAction.INCR, ts=ts, mac=b"1234")


def mon(ts=1.0, action=FeedbackAction.DECR):
    return Feedback(FeedbackMode.MON, "L", action, ts=ts, mac=b"1234", token_nop=b"5678")


def test_common_case_is_20_bytes():
    # nop feedback both ways, return header present (§6.1).
    header = NetFenceHeader(feedback=nop(), returned=nop())
    assert header.wire_size() == 20


def test_worst_case_is_28_bytes():
    header = NetFenceHeader(feedback=mon(), returned=mon())
    assert header.wire_size() == 28


def test_return_header_omission_saves_8_bytes():
    with_return = NetFenceHeader(feedback=nop(), returned=nop())
    without_return = NetFenceHeader(feedback=nop(), returned=None)
    assert with_return.wire_size() - without_return.wire_size() == 8


def test_mon_forward_feedback_larger_than_nop():
    assert NetFenceHeader(feedback=mon()).wire_size() > NetFenceHeader(feedback=nop()).wire_size()


def test_header_accessors_on_packet():
    packet = Packet(src="a", dst="b")
    assert get_netfence_header(packet) is None
    header = ensure_netfence_header(packet)
    assert isinstance(header, NetFenceHeader)
    assert get_netfence_header(packet) is header
    assert ensure_netfence_header(packet) is header


def test_empty_header_size_matches_nop_case():
    assert NetFenceHeader().wire_size() == 12
