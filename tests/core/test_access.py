"""Tests for the NetFence access router (§4.2-§4.3, Fig. 18)."""

import pytest

from repro.core.access import NetFenceAccessRouter
from repro.core.domain import NetFenceDomain
from repro.core.header import NetFenceHeader, get_netfence_header
from repro.simulator.packet import Packet, PacketType
from repro.simulator.topology import Topology


@pytest.fixture
def rig(params, domain):
    """An access router with one local host and a forwarding path."""
    domain.register_link("Rb->dst", "AS-core")
    topo = Topology()
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    access = topo.add_router("Ra", as_name="AS-src", router_cls=NetFenceAccessRouter,
                             domain=domain)
    topo.add_router("Rb", as_name="AS-core")
    topo.add_duplex_link("src", "Ra", 10e6, 0.001)
    topo.add_duplex_link("Ra", "Rb", 10e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 10e6, 0.001)
    topo.finalize()
    from_link = topo.link_between("src", "Ra")
    return topo, access, from_link


def regular_packet(feedback=None):
    packet = Packet(src="src", dst="dst", size_bytes=1500,
                    ptype=PacketType.REGULAR, flow_id="f", src_as="AS-src")
    packet.set_header("netfence", NetFenceHeader(feedback=feedback))
    return packet


def request_packet(priority=0):
    packet = Packet(src="src", dst="dst", size_bytes=92, ptype=PacketType.REQUEST,
                    flow_id="f", src_as="AS-src", priority=priority)
    packet.set_header("netfence", NetFenceHeader(priority=priority))
    return packet


def test_packet_without_netfence_header_treated_as_legacy(rig):
    topo, access, from_link = rig
    packet = Packet(src="src", dst="dst", ptype=PacketType.REGULAR)
    assert access.admit_from_host(packet, from_link) is True
    assert packet.is_legacy
    assert access.counters["legacy"] == 1


def test_request_packet_gets_nop_feedback_stamped(rig):
    topo, access, from_link = rig
    packet = request_packet()
    assert access.admit_from_host(packet, from_link) is True
    header = get_netfence_header(packet)
    assert header.feedback is not None and header.feedback.is_nop
    assert access.counters["request_admitted"] == 1


def test_regular_packet_with_valid_nop_passes_and_is_refreshed(rig):
    topo, access, from_link = rig
    old = access.stamper.stamp_nop("src", "dst", topo.clock.now)
    packet = regular_packet(feedback=old)
    topo.run(until=1.0)
    assert access.admit_from_host(packet, from_link) is True
    refreshed = get_netfence_header(packet).feedback
    assert refreshed.is_nop and refreshed.ts == pytest.approx(topo.clock.now)
    assert access.counters["regular_nop"] == 1


def test_regular_packet_with_forged_feedback_demoted_to_request(rig):
    topo, access, from_link = rig
    from repro.core.feedback import Feedback, FeedbackAction, FeedbackMode
    forged = Feedback(FeedbackMode.MON, "Rb->dst", FeedbackAction.INCR,
                      ts=topo.clock.now, mac=b"\x00\x00\x00\x00")
    packet = regular_packet(feedback=forged)
    access.admit_from_host(packet, from_link)
    assert packet.is_request
    assert access.counters["regular_invalid"] == 1


def test_regular_packet_with_expired_feedback_demoted(rig):
    topo, access, from_link = rig
    old = access.stamper.stamp_incr("src", "dst", "Rb->dst", topo.clock.now)
    topo.run(until=10.0)
    packet = regular_packet(feedback=old)
    access.admit_from_host(packet, from_link)
    assert packet.is_request


def test_mon_feedback_creates_rate_limiter_and_restamps_incr(rig):
    topo, access, from_link = rig
    forwarded = []
    access.forward_tap = lambda packet, link: forwarded.append(packet)
    feedback = access.stamper.stamp_incr("src", "dst", "Rb->dst", topo.clock.now)
    packet = regular_packet(feedback=feedback)
    verdict = access.admit_from_host(packet, from_link)
    # A brand-new leaky bucket has no accumulated credit, so the first packet
    # is cached and released at the rate limit shortly afterwards.
    assert verdict is None
    assert access.limiter_for("src", "Rb->dst") is not None
    topo.run(until=1.0)
    assert forwarded
    restamped = get_netfence_header(forwarded[0]).feedback
    assert restamped.is_incr and restamped.link == "Rb->dst"


def test_decr_feedback_also_restamped_as_incr(rig):
    """§4.3.3: the access router resets L↓ to L↑ when forwarding."""
    topo, access, from_link = rig
    forwarded = []
    access.forward_tap = lambda packet, link: forwarded.append(packet)
    from repro.core.feedback import BottleneckStamper
    nop = access.stamper.stamp_nop("src", "dst", topo.clock.now)
    decr = BottleneckStamper(access.domain.key_registry, "AS-core").stamp_decr(
        nop, "src", "dst", "AS-src", "Rb->dst")
    packet = regular_packet(feedback=decr)
    access.admit_from_host(packet, from_link)
    topo.run(until=1.0)
    assert forwarded
    assert get_netfence_header(forwarded[0]).feedback.is_incr


def test_flood_through_rate_limiter_caches_then_drops(rig):
    topo, access, from_link = rig
    feedback = access.stamper.stamp_incr("src", "dst", "Rb->dst", topo.clock.now)
    verdicts = []
    for _ in range(60):
        packet = regular_packet(feedback=feedback.copy())
        verdicts.append(access.admit_from_host(packet, from_link))
    assert verdicts.count(None) > 0        # cached by the leaky bucket
    assert verdicts.count(False) > 0       # eventually dropped
    assert access.counters["regular_dropped"] > 0


def test_cached_packets_are_forwarded_later(rig):
    topo, access, from_link = rig
    feedback = access.stamper.stamp_incr("src", "dst", "Rb->dst", topo.clock.now)
    for _ in range(5):
        access.admit_from_host(regular_packet(feedback=feedback.copy()), from_link)
    before = access.packets_forwarded
    topo.run(until=2.0)
    assert access.packets_forwarded > before


def test_request_flood_above_token_rate_dropped(rig):
    topo, access, from_link = rig
    drops = 0
    for _ in range(3000):
        packet = request_packet(priority=5)
        if not access.admit_from_host(packet, from_link):
            drops += 1
    assert drops > 0
    assert access.counters["request_dropped"] == drops


def test_rate_limiter_garbage_collected_after_idle_timeout(params, domain):
    domain.register_link("Rb->dst", "AS-core")
    fast = params.with_overrides(rate_limiter_idle_timeout=5.0, control_interval=1.0)
    fast_domain = NetFenceDomain(params=fast, master=b"gc-test")
    fast_domain.register_link("Rb->dst", "AS-core")
    topo = Topology()
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    access = topo.add_router("Ra", as_name="AS-src", router_cls=NetFenceAccessRouter,
                             domain=fast_domain)
    topo.add_router("Rb", as_name="AS-core")
    topo.add_duplex_link("src", "Ra", 10e6, 0.001)
    topo.add_duplex_link("Ra", "Rb", 10e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 10e6, 0.001)
    topo.finalize()
    from_link = topo.link_between("src", "Ra")
    feedback = access.stamper.stamp_incr("src", "dst", "Rb->dst", topo.clock.now)
    packet = regular_packet(feedback=feedback)
    access.admit_from_host(packet, from_link)
    assert access.active_rate_limiters == 1
    topo.run(until=12.0)
    assert access.active_rate_limiters == 0
