"""Tests for congestion policing feedback: Eqs. (1)-(3), (4)-(5), and security."""

import pytest

from repro.core.feedback import (
    BottleneckStamper,
    Feedback,
    FeedbackAction,
    FeedbackMode,
    FeedbackStamper,
    multi_append,
    multi_stamp_nop,
    multi_validate,
)
from repro.crypto.keys import AccessRouterSecret

SRC, DST = "alice", "bob"
LINK = "Rbl->Rbr"
LINK_AS = "AS-core"
ACCESS_AS = "AS-src"
W = 4.0


@pytest.fixture
def setup(domain):
    domain.register_link(LINK, LINK_AS)
    secret = AccessRouterSecret("Ra", master=b"ra-secret")
    access = FeedbackStamper(secret, domain.key_registry, ACCESS_AS)
    bottleneck = BottleneckStamper(domain.key_registry, LINK_AS)
    return domain, secret, access, bottleneck


def test_nop_feedback_round_trip(setup):
    _, _, access, _ = setup
    nop = access.stamp_nop(SRC, DST, 10.0)
    assert nop.is_nop and not nop.is_mon
    assert access.validate(nop, SRC, DST, 10.5, W)


def test_incr_feedback_round_trip(setup):
    _, _, access, _ = setup
    incr = access.stamp_incr(SRC, DST, LINK, 10.0)
    assert incr.is_incr and incr.link == LINK
    assert incr.token_nop is not None
    assert access.validate(incr, SRC, DST, 11.0, W)


def test_decr_feedback_round_trip(setup):
    domain, _, access, bottleneck = setup
    nop = access.stamp_nop(SRC, DST, 10.0)
    decr = bottleneck.stamp_decr(nop, SRC, DST, ACCESS_AS, LINK)
    assert decr.is_decr
    assert decr.token_nop is None  # erased (§4.4)
    assert access.validate(decr, SRC, DST, 10.5, W, link_as=domain.as_for_link(LINK))


def test_decr_over_incr_feedback_validates(setup):
    domain, _, access, bottleneck = setup
    incr = access.stamp_incr(SRC, DST, LINK, 10.0)
    decr = bottleneck.stamp_decr(incr, SRC, DST, ACCESS_AS, LINK)
    assert access.validate(decr, SRC, DST, 10.5, W, link_as=LINK_AS)


def test_expired_feedback_rejected(setup):
    _, _, access, _ = setup
    nop = access.stamp_nop(SRC, DST, 10.0)
    assert not access.validate(nop, SRC, DST, 10.0 + W + 0.1, W)


def test_feedback_bound_to_src_dst_pair(setup):
    _, _, access, _ = setup
    nop = access.stamp_nop(SRC, DST, 10.0)
    assert not access.validate(nop, "mallory", DST, 10.5, W)
    assert not access.validate(nop, SRC, "other", 10.5, W)


def test_forged_mac_rejected(setup):
    _, _, access, _ = setup
    forged = Feedback(mode=FeedbackMode.MON, link=LINK, action=FeedbackAction.INCR,
                      ts=10.0, mac=b"\xde\xad\xbe\xef")
    assert not access.validate(forged, SRC, DST, 10.5, W)


def test_empty_mac_rejected(setup):
    _, _, access, _ = setup
    assert not access.validate(
        Feedback(FeedbackMode.NOP, None, FeedbackAction.INCR, ts=10.0, mac=b""),
        SRC, DST, 10.5, W)


def test_decr_cannot_be_relabelled_as_incr(setup):
    """A colluding pair cannot turn L↓ into L↑ without the access router's key."""
    _, _, access, bottleneck = setup
    nop = access.stamp_nop(SRC, DST, 10.0)
    decr = bottleneck.stamp_decr(nop, SRC, DST, ACCESS_AS, LINK)
    tampered = decr.copy()
    tampered.action = FeedbackAction.INCR
    assert not access.validate(tampered, SRC, DST, 10.5, W, link_as=LINK_AS)


def test_incr_cannot_be_moved_to_another_link(setup):
    _, _, access, _ = setup
    incr = access.stamp_incr(SRC, DST, LINK, 10.0)
    moved = incr.copy()
    moved.link = "OtherLink"
    assert not access.validate(moved, SRC, DST, 10.5, W)


def test_decr_requires_known_link_as(setup):
    _, _, access, bottleneck = setup
    nop = access.stamp_nop(SRC, DST, 10.0)
    decr = bottleneck.stamp_decr(nop, SRC, DST, ACCESS_AS, LINK)
    assert not access.validate(decr, SRC, DST, 10.5, W, link_as=None)


def test_secret_rotation_accepts_recent_feedback(setup):
    _, secret, access, _ = setup
    boundary = secret.rotation_interval
    nop = access.stamp_nop(SRC, DST, boundary - 0.5)
    # Validation happens just after the secret rotated; the previous epoch's
    # key must still be accepted for fresh feedback.
    assert access.validate(nop, SRC, DST, boundary + 0.5, W)


def test_describe_strings(setup):
    _, _, access, bottleneck = setup
    nop = access.stamp_nop(SRC, DST, 1.0)
    incr = access.stamp_incr(SRC, DST, LINK, 1.0)
    decr = bottleneck.stamp_decr(nop, SRC, DST, ACCESS_AS, LINK)
    assert nop.describe() == "nop"
    assert incr.describe().endswith("↑")
    assert decr.describe().endswith("↓")


# ---------------------------------------------------------------------------
# Appendix B.1 multi-bottleneck feedback (Eqs. 4-5)
# ---------------------------------------------------------------------------

@pytest.fixture
def multi_setup(domain):
    domain.register_link("L1", "AS-1")
    domain.register_link("L2", "AS-2")
    secret = AccessRouterSecret("Ra", master=b"ra-secret")
    return domain, secret


def test_multi_feedback_chain_round_trip(multi_setup):
    domain, secret = multi_setup
    fb = multi_stamp_nop(secret, SRC, DST, 5.0)
    fb = multi_append(domain.key_registry, "AS-1", ACCESS_AS, fb, SRC, DST, "L1",
                      FeedbackAction.INCR)
    fb = multi_append(domain.key_registry, "AS-2", ACCESS_AS, fb, SRC, DST, "L2",
                      FeedbackAction.DECR)
    assert fb.chain == (("L1", "incr"), ("L2", "decr"))
    assert fb.is_decr  # summary action reflects the worst entry
    assert multi_validate(secret, domain.key_registry, ACCESS_AS, fb, SRC, DST,
                          5.5, W, domain.as_for_link)


def test_multi_feedback_tampered_chain_rejected(multi_setup):
    domain, secret = multi_setup
    fb = multi_stamp_nop(secret, SRC, DST, 5.0)
    fb = multi_append(domain.key_registry, "AS-1", ACCESS_AS, fb, SRC, DST, "L1",
                      FeedbackAction.DECR)
    tampered = fb.copy()
    tampered.chain = (("L1", "incr"),)  # downstream relabelling
    assert not multi_validate(secret, domain.key_registry, ACCESS_AS, tampered,
                              SRC, DST, 5.5, W, domain.as_for_link)


def test_multi_feedback_empty_chain_validates(multi_setup):
    domain, secret = multi_setup
    fb = multi_stamp_nop(secret, SRC, DST, 5.0)
    assert fb.is_nop and fb.chain == ()
    assert multi_validate(secret, domain.key_registry, ACCESS_AS, fb, SRC, DST,
                          5.5, W, domain.as_for_link)


def test_multi_feedback_unknown_link_rejected(multi_setup):
    domain, secret = multi_setup
    fb = multi_stamp_nop(secret, SRC, DST, 5.0)
    fb = multi_append(domain.key_registry, "AS-x", ACCESS_AS, fb, SRC, DST,
                      "UnregisteredLink", FeedbackAction.INCR)
    assert not multi_validate(secret, domain.key_registry, ACCESS_AS, fb, SRC, DST,
                              5.5, W, domain.as_for_link)
