"""Tests for the congestion quota extension (§7, Discussion)."""

import pytest

from repro.core.access import NetFenceAccessRouter
from repro.core.domain import NetFenceDomain
from repro.core.header import NetFenceHeader
from repro.core.params import NetFenceParams
from repro.core.quota import CongestionQuota, QuotaEnforcer
from repro.simulator.packet import Packet, PacketType
from repro.simulator.topology import Topology


# ---------------------------------------------------------------------------
# CongestionQuota accounting
# ---------------------------------------------------------------------------

def test_quota_charges_accumulate_until_exhaustion():
    quota = CongestionQuota(quota_bytes=10_000)
    quota.charge("s", "L", 6_000)
    assert quota.allows("s", "L")
    quota.charge("s", "L", 6_000)
    assert not quota.allows("s", "L")
    assert ("s", "L") in quota.exhausted_pairs


def test_quota_is_per_sender_and_per_link():
    quota = CongestionQuota(quota_bytes=1_000)
    quota.charge("s", "L1", 2_000)
    assert not quota.allows("s", "L1")
    # Other links of the same sender, and other senders, are unaffected
    # (the paper's point about not throttling traffic to healthy links).
    assert quota.allows("s", "L2")
    assert quota.allows("other", "L1")


def test_quota_replenish_restores_allowance():
    quota = CongestionQuota(quota_bytes=1_000)
    quota.charge("s", "L", 5_000)
    assert not quota.allows("s", "L")
    quota.replenish()
    assert quota.allows("s", "L")
    # Lifetime accounting is preserved across replenishment.
    assert quota.state_for("s", "L").total_spent_bytes == 5_000


def test_quota_validation():
    with pytest.raises(ValueError):
        CongestionQuota(quota_bytes=0)
    with pytest.raises(ValueError):
        CongestionQuota(period_s=0)


# ---------------------------------------------------------------------------
# QuotaEnforcer on an access router
# ---------------------------------------------------------------------------

@pytest.fixture
def enforcer_rig():
    params = NetFenceParams().with_overrides(control_interval=1.0)
    domain = NetFenceDomain(params=params, master=b"quota")
    domain.register_link("Rb->dst", "AS-core")
    topo = Topology()
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    access = topo.add_router("Ra", as_name="AS-src", router_cls=NetFenceAccessRouter,
                             domain=domain)
    topo.add_router("Rb", as_name="AS-core")
    topo.add_duplex_link("src", "Ra", 10e6, 0.001)
    topo.add_duplex_link("Ra", "Rb", 10e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 10e6, 0.001)
    topo.finalize()
    quota = CongestionQuota(quota_bytes=30_000, period_s=1_000.0)
    enforcer = QuotaEnforcer(topo.clock, access, quota=quota)
    return topo, access, enforcer


def packet_with_feedback(access, action="decr"):
    if action == "decr":
        # The sender keeps receiving L↓ from the congested bottleneck and
        # honestly presents it (it has nothing better).
        from repro.core.feedback import BottleneckStamper
        nop = access.stamper.stamp_nop("src", "dst", access.clock.now)
        feedback = BottleneckStamper(access.domain.key_registry, "AS-core").stamp_decr(
            nop, "src", "dst", "AS-src", "Rb->dst")
    else:
        feedback = access.stamper.stamp_nop("src", "dst", access.clock.now)
    packet = Packet(src="src", dst="dst", size_bytes=1500, ptype=PacketType.REGULAR,
                    flow_id="f", src_as="AS-src")
    packet.set_header("netfence", NetFenceHeader(feedback=feedback))
    return packet


def flood(topo, access, duration, rate_pps=40):
    """Offer a steady stream of mon-feedback packets from the local host."""
    from_link = topo.link_between("src", "Ra")
    interval = 1.0 / rate_pps
    stop_at = topo.clock.now + duration

    def send():
        access.receive(packet_with_feedback(access), from_link)
        if topo.clock.now + interval < stop_at:
            topo.clock.schedule(interval, send)

    topo.clock.schedule(0.0, send)
    topo.run(until=stop_at)


def test_persistent_congestion_sender_charged_and_cut_off(enforcer_rig):
    topo, access, enforcer = enforcer_rig
    # The sender keeps flooding while its limiter repeatedly decreases
    # (no incr feedback ever arrives), so its congestion quota drains.
    flood(topo, access, duration=30.0)
    limiter = access.limiter_for("src", "Rb->dst")
    assert limiter is not None
    assert limiter.stats.decreases > 0
    state = enforcer.quota.state_for("src", "Rb->dst")
    assert state.total_spent_bytes > 0
    assert not enforcer.quota.allows("src", "Rb->dst")
    assert enforcer.dropped_over_quota > 0


def test_quota_not_charged_without_congestion(enforcer_rig):
    topo, access, enforcer = enforcer_rig
    # nop-feedback traffic is never rate limited, so no congestion traffic is
    # charged no matter how much is sent.
    from_link = topo.link_between("src", "Ra")
    for _ in range(50):
        access.receive(packet_with_feedback(access, action="nop"), from_link)
    topo.run(until=5.0)
    assert enforcer.quota.state_for("src", "Rb->dst").total_spent_bytes == 0
    assert enforcer.dropped_over_quota == 0
