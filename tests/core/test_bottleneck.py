"""Tests for the NetFence bottleneck router: channels, detection, stamping."""

import pytest

from repro.core.bottleneck import NetFenceChannelQueue, NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.core.feedback import FeedbackStamper
from repro.core.header import NetFenceHeader, get_netfence_header
from repro.core.params import NetFenceParams
from repro.crypto.keys import AccessRouterSecret
from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet, PacketType
from repro.simulator.topology import Topology
from repro.transport.udp import UdpSender, UdpSink


# ---------------------------------------------------------------------------
# NetFenceChannelQueue
# ---------------------------------------------------------------------------

def make_queue(sim=None, capacity_bps=1e6, **kwargs):
    return NetFenceChannelQueue(sim or Simulator(), capacity_bps,
                                params=NetFenceParams(), **kwargs)


def request(priority=0, size=92):
    return Packet(src="s", dst="d", size_bytes=size, ptype=PacketType.REQUEST,
                  priority=priority)


def regular(size=1500, src="s"):
    return Packet(src=src, dst="d", size_bytes=size, ptype=PacketType.REGULAR)


def legacy():
    return Packet(src="s", dst="d", ptype=PacketType.LEGACY)


def test_channels_classified_by_packet_type():
    queue = make_queue()
    queue.enqueue(request())
    queue.enqueue(regular())
    queue.enqueue(legacy())
    assert len(queue.request_queue) == 1
    assert len(queue.regular_queue) == 1
    assert len(queue.legacy_queue) == 1


def test_legacy_served_only_when_other_channels_empty():
    queue = make_queue()
    queue.enqueue(legacy())
    queue.enqueue(regular())
    assert queue.dequeue().is_regular
    assert queue.dequeue().is_legacy


def test_request_channel_capped_at_five_percent():
    sim = Simulator()
    queue = make_queue(sim=sim, capacity_bps=1e6)
    # Fill the request channel; with no other traffic, at most 5 % of the
    # link's bytes may come out of it per unit time.
    for _ in range(100):
        queue.enqueue(request())
    sim._now = 1.0  # pretend one second has passed to refill the budget
    served_bytes = 0
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        served_bytes += packet.size_bytes
    assert served_bytes * 8 <= 0.05 * 1e6 * 1.1


def test_time_until_ready_reports_budget_refill():
    sim = Simulator()
    queue = make_queue(sim=sim, capacity_bps=1e6)
    for _ in range(100):
        queue.enqueue(request())
    while queue.dequeue() is not None:
        pass
    wait = queue.time_until_ready()
    assert wait is not None and wait > 0


def test_higher_priority_requests_served_first():
    sim = Simulator()
    queue = make_queue(sim=sim)
    low = request(priority=0)
    high = request(priority=8)
    queue.enqueue(low)
    queue.enqueue(high)
    sim._now = 1.0  # let the request-channel budget refill
    assert queue.dequeue() is high


def test_regular_drop_callback_fires():
    dropped = []
    queue = make_queue(capacity_bps=1e5)
    queue.on_regular_drop = dropped.append
    for _ in range(200):
        queue.enqueue(regular())
    assert dropped


def test_as_fairness_mode_uses_per_as_queue():
    queue = make_queue(as_fairness=True, capacity_bps=1e6)
    a = Packet(src="s1", dst="d", ptype=PacketType.REGULAR, src_as="AS1")
    b = Packet(src="s2", dst="d", ptype=PacketType.REGULAR, src_as="AS2")
    queue.enqueue(a)
    queue.enqueue(b)
    assert len(queue.regular_queue) == 2
    assert queue.dequeue() in (a, b)


# ---------------------------------------------------------------------------
# NetFenceRouter: feedback update rules (§4.3.2)
# ---------------------------------------------------------------------------

@pytest.fixture
def router_rig(params, domain):
    topo = Topology()
    sim = topo.clock
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    router = topo.add_router("Rb", as_name="AS-core", router_cls=NetFenceRouter,
                             domain=domain)
    topo.add_duplex_link("src", "Rb", 10e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 1e6, 0.001,
                         queue_factory=netfence_queue_factory(sim, params))
    topo.finalize()
    out_link = topo.link_between("Rb", "dst")
    secret = AccessRouterSecret("Ra", master=b"ra")
    stamper = FeedbackStamper(secret, domain.key_registry, "AS-src")
    return topo, router, out_link, stamper


def packet_with(feedback):
    packet = Packet(src="src", dst="dst", ptype=PacketType.REGULAR, src_as="AS-src")
    packet.set_header("netfence", NetFenceHeader(feedback=feedback))
    return packet


def test_out_of_mon_state_feedback_untouched(router_rig):
    topo, router, out_link, stamper = router_rig
    packet = packet_with(stamper.stamp_nop("src", "dst", 0.0))
    router.before_enqueue(packet, out_link)
    assert get_netfence_header(packet).feedback.is_nop


def test_rule1_nop_always_replaced_with_decr_in_mon(router_rig):
    topo, router, out_link, stamper = router_rig
    router.start_monitoring(out_link.name)
    packet = packet_with(stamper.stamp_nop("src", "dst", 0.0))
    router.before_enqueue(packet, out_link)
    feedback = get_netfence_header(packet).feedback
    assert feedback.is_decr and feedback.link == out_link.name


def test_rule2_upstream_decr_not_overwritten(router_rig):
    topo, router, out_link, stamper = router_rig
    from repro.core.feedback import BottleneckStamper
    router.start_monitoring(out_link.name)
    router.mark_overloaded(out_link.name)
    upstream = BottleneckStamper(router.domain.key_registry, "AS-up").stamp_decr(
        stamper.stamp_nop("src", "dst", 0.0), "src", "dst", "AS-src", "UpstreamLink")
    packet = packet_with(upstream)
    router.before_enqueue(packet, out_link)
    assert get_netfence_header(packet).feedback.link == "UpstreamLink"


def test_rule3_incr_overwritten_only_when_overloaded(router_rig):
    topo, router, out_link, stamper = router_rig
    router.start_monitoring(out_link.name)
    # Not overloaded: L↑ survives.
    packet = packet_with(stamper.stamp_incr("src", "dst", out_link.name, 0.0))
    router.before_enqueue(packet, out_link)
    assert get_netfence_header(packet).feedback.is_incr
    # Overloaded: L↑ becomes L↓.
    router.mark_overloaded(out_link.name)
    packet = packet_with(stamper.stamp_incr("src", "dst", out_link.name, 0.0))
    router.before_enqueue(packet, out_link)
    assert get_netfence_header(packet).feedback.is_decr


def test_request_packets_also_stamped_in_mon(router_rig):
    topo, router, out_link, stamper = router_rig
    router.start_monitoring(out_link.name)
    packet = Packet(src="src", dst="dst", size_bytes=92, ptype=PacketType.REQUEST,
                    src_as="AS-src")
    packet.set_header("netfence", NetFenceHeader(feedback=stamper.stamp_nop("src", "dst", 0.0)))
    router.before_enqueue(packet, out_link)
    assert get_netfence_header(packet).feedback.is_decr


def test_legacy_packets_never_stamped(router_rig):
    topo, router, out_link, stamper = router_rig
    router.start_monitoring(out_link.name)
    packet = Packet(src="src", dst="dst", ptype=PacketType.LEGACY)
    assert router.before_enqueue(packet, out_link) is True


def test_hysteresis_expires_after_two_control_intervals(router_rig):
    topo, router, out_link, stamper = router_rig
    router.start_monitoring(out_link.name)
    router.mark_overloaded(out_link.name)
    state = router.link_state(out_link.name)
    assert state.is_overloaded(topo.clock.now)
    horizon = topo.clock.now + router.params.hysteresis_duration
    assert state.is_overloaded(horizon - 0.01)
    assert not state.is_overloaded(horizon + 0.01)


def test_link_ownership_registered_in_domain(router_rig):
    topo, router, out_link, stamper = router_rig
    assert router.domain.as_for_link(out_link.name) == "AS-core"


# ---------------------------------------------------------------------------
# Attack detection (§4.3.1)
# ---------------------------------------------------------------------------

def test_flood_triggers_monitoring_cycle(params, domain):
    topo = Topology()
    sim = topo.clock
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    topo.add_router("Rb", as_name="AS-core", router_cls=NetFenceRouter, domain=domain)
    topo.add_duplex_link("src", "Rb", 100e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 500e3, 0.001,
                         queue_factory=netfence_queue_factory(sim, params))
    topo.finalize()
    router = topo.router("Rb")
    bottleneck = topo.link_between("Rb", "dst")
    UdpSink(sim, topo.host("dst"))
    UdpSender(sim, topo.host("src"), "dst", rate_bps=2e6).start()
    topo.run(until=5.0)
    assert router.in_monitoring_cycle(bottleneck.name)
    assert router.link_state(bottleneck.name).is_overloaded(sim.now)


def test_no_attack_no_monitoring_cycle(params, domain):
    topo = Topology()
    sim = topo.clock
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    topo.add_router("Rb", as_name="AS-core", router_cls=NetFenceRouter, domain=domain)
    topo.add_duplex_link("src", "Rb", 100e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 10e6, 0.001,
                         queue_factory=netfence_queue_factory(sim, params))
    topo.finalize()
    router = topo.router("Rb")
    UdpSink(sim, topo.host("dst"))
    UdpSender(sim, topo.host("src"), "dst", rate_bps=1e6).start()  # 10 % load
    topo.run(until=5.0)
    assert not router.in_monitoring_cycle(topo.link_between("Rb", "dst").name)


def test_monitoring_cycle_ends_after_quiet_period(params, domain):
    quiet = params.with_overrides(monitor_cycle_min_duration=3.0)
    quiet_domain = NetFenceDomain(params=quiet, master=b"q")
    topo = Topology()
    sim = topo.clock
    topo.add_host("src", as_name="AS-src")
    topo.add_host("dst", as_name="AS-dst")
    topo.add_router("Rb", as_name="AS-core", router_cls=NetFenceRouter,
                    domain=quiet_domain)
    topo.add_duplex_link("src", "Rb", 100e6, 0.001)
    topo.add_duplex_link("Rb", "dst", 500e3, 0.001,
                         queue_factory=netfence_queue_factory(sim, quiet))
    topo.finalize()
    router = topo.router("Rb")
    bottleneck = topo.link_between("Rb", "dst")
    UdpSink(sim, topo.host("dst"))
    sender = UdpSender(sim, topo.host("src"), "dst", rate_bps=2e6)
    sender.start()
    sim.schedule(3.0, sender.stop)
    topo.run(until=4.0)
    assert router.in_monitoring_cycle(bottleneck.name)
    # The loss-rate EWMA needs a while to decay below p_th before the quiet
    # period can even begin; run long enough for both.
    topo.run(until=80.0)
    assert not router.in_monitoring_cycle(bottleneck.name)
