"""Tests for compiling (graph, placement) into a runnable Topology."""

import pytest

from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceChannelQueue, NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.simulator.node import Router
from repro.simulator.packet import Packet
from repro.topogen import generate_as_graph, place, realize
from repro.topogen.asgraph import as_path


@pytest.fixture
def compiled():
    spec = generate_as_graph(20, seed=4)
    plan = place(spec, "uniform", num_bots=5_000, num_users=4, seed=4)
    return spec, plan, realize(spec, plan, bottleneck_bps=2e6)


def test_one_router_per_as_plus_all_hosts(compiled):
    spec, plan, realized = compiled
    assert set(realized.as_router) == set(spec.as_names())
    assert len(realized.topo.routers) == spec.num_as
    assert {h.name for h in realized.topo.hosts} == {h.name for h in plan.hosts}


def test_bottleneck_is_the_victim_uplink(compiled):
    spec, plan, realized = compiled
    assert realized.bottleneck_as == spec.providers_of(plan.victim_as)[0]
    link = realized.bottleneck_link
    assert link is not None
    assert link.src_node.name == realized.as_router[realized.bottleneck_as]
    assert link.dst_node.name == realized.as_router[plan.victim_as]
    assert link.capacity_bps == 2e6


def test_routes_follow_the_valley_free_as_path(compiled):
    spec, plan, realized = compiled
    topo = realized.topo
    victim_as = plan.victim_as
    for placed in realized.attackers[:5] + realized.users[:2]:
        expected = as_path(spec, placed.as_name, victim_as)
        node = topo.router(realized.as_router[placed.as_name])
        walked = [placed.as_name]
        while node.name != realized.as_router[victim_as]:
            link = node.route_for(Packet(src=placed.name, dst=realized.victim))
            assert link is not None, f"{node.name} has no route to the victim"
            node = link.dst_node
            walked.append(node.as_name)
        assert walked == expected


def test_sender_ases_get_the_access_router_class():
    from repro.simulator.topology import Topology

    spec = generate_as_graph(20, seed=4)
    plan = place(spec, "uniform", num_bots=5_000, num_users=4, seed=4)
    domain = NetFenceDomain(master=b"test-topogen")
    topo = Topology()
    realized = realize(
        spec, plan,
        topo=topo,
        access_router_cls=NetFenceAccessRouter,
        access_router_kwargs={"domain": domain},
        core_router_cls=NetFenceRouter,
        core_router_kwargs={"domain": domain},
        bottleneck_queue_factory=netfence_queue_factory(topo.clock),
    )
    for as_name in plan.sender_as_names:
        assert isinstance(topo.router(realized.as_router[as_name]), NetFenceAccessRouter)
    assert isinstance(topo.router(realized.as_router[realized.bottleneck_as]),
                      NetFenceRouter)
    assert isinstance(topo.router(realized.as_router[plan.victim_as]),
                      NetFenceAccessRouter)
    assert isinstance(realized.bottleneck_link.queue, NetFenceChannelQueue)


def test_per_as_access_router_hook_overrides_individual_ases():
    spec = generate_as_graph(20, seed=4)
    plan = place(spec, "uniform", num_bots=5_000, num_users=4, seed=4)
    upgraded = set(plan.sender_as_names[::2])

    def for_as(as_name):
        if as_name in upgraded:
            return NetFenceAccessRouter, {"domain": NetFenceDomain(master=b"t")}
        return Router, {}

    realized = realize(spec, plan, access_router_for_as=for_as)
    for as_name in plan.sender_as_names:
        router = realized.topo.router(realized.as_router[as_name])
        expected = NetFenceAccessRouter if as_name in upgraded else Router
        assert type(router) is expected


def test_realized_topology_delivers_packets(compiled):
    spec, plan, realized = compiled
    topo = realized.topo
    source = realized.attackers[0]
    host = topo.host(source.name)
    victim = topo.host(realized.victim)
    host.send(Packet(src=source.name, dst=realized.victim, size_bytes=500))
    topo.run(until=2.0)
    assert victim.packets_received == 1
