"""Tests for botnet/victim/user placement and per-AS aggregation."""

import pytest

from repro.topogen.asgraph import TIER_STUB, generate_as_graph
from repro.topogen.placement import PLACEMENT_MODELS, place


@pytest.fixture
def spec():
    return generate_as_graph(32, seed=5)


def test_bots_are_conserved_through_aggregation(spec):
    for model in PLACEMENT_MODELS:
        plan = place(spec, model, num_bots=123_457, seed=3)
        assert plan.represented_bots == 123_457


def test_aggregation_bounds_hosts_per_as(spec):
    plan = place(spec, "uniform", num_bots=1_000_000,
                 max_attacker_hosts_per_as=2, seed=3)
    per_as = {}
    for host in plan.attackers:
        per_as[host.as_name] = per_as.get(host.as_name, 0) + 1
        assert host.multiplicity >= 1
    assert max(per_as.values()) <= 2
    # A million bots collapse to O(#AS) simulated hosts.
    assert len(plan.attackers) <= 2 * spec.num_as


def test_victim_side_never_hosts_senders(spec):
    for model in PLACEMENT_MODELS:
        plan = place(spec, model, num_bots=10_000, seed=3)
        protected = {plan.victim_as} | set(spec.providers_of(plan.victim_as))
        sender_as = {h.as_name for h in plan.attackers + plan.users}
        assert not sender_as & protected
        assert plan.victim.as_name == plan.victim_as
        assert all(c.as_name == plan.victim_as for c in plan.colluders)


def test_stub_concentrated_places_bots_only_in_stubs(spec):
    plan = place(spec, "stub_concentrated", num_bots=10_000, seed=3)
    assert all(spec.tier_of(h.as_name) == TIER_STUB for h in plan.attackers)


def test_clustered_concentrates_bots_in_few_ases(spec):
    uniform = place(spec, "uniform", num_bots=10_000, seed=3)
    clustered = place(spec, "clustered", num_bots=10_000, seed=3)
    assert len(clustered.bots_per_as()) < len(uniform.bots_per_as())
    assert len(clustered.bots_per_as()) <= max(1, round(0.1 * spec.num_as)) + 1


def test_users_and_colluders_counted(spec):
    plan = place(spec, "uniform", num_bots=100, num_users=5, num_colluders=3, seed=2)
    assert len(plan.users) == 5
    assert len(plan.colluders) == 3


def test_placement_is_deterministic(spec):
    a = place(spec, "uniform", num_bots=9_999, seed=7)
    b = place(spec, "uniform", num_bots=9_999, seed=7)
    assert a == b
    c = place(spec, "uniform", num_bots=9_999, seed=8)
    assert a != c


def test_invalid_inputs_rejected(spec):
    with pytest.raises(ValueError):
        place(spec, "teleported", num_bots=10)
    with pytest.raises(ValueError):
        place(spec, "uniform", num_bots=0)
