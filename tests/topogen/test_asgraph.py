"""Tests for the seeded AS-graph generator and valley-free routing."""

import pytest

from repro.topogen.asgraph import (
    ASEdge,
    TIER_CORE,
    TIER_STUB,
    TIER_TRANSIT,
    as_path,
    generate_as_graph,
    valley_free_next_hops,
)


# ---------------------------------------------------------------------------
# Generator structure
# ---------------------------------------------------------------------------

def test_tier_counts_partition_the_as_space():
    spec = generate_as_graph(40, seed=7)
    core = spec.names_in_tier(TIER_CORE)
    transit = spec.names_in_tier(TIER_TRANSIT)
    stub = spec.names_in_tier(TIER_STUB)
    assert len(core) + len(transit) + len(stub) == spec.num_as == 40
    assert core and transit and stub
    assert len(stub) > len(transit) > len(core)


def test_every_non_core_as_has_a_provider():
    spec = generate_as_graph(32, seed=5)
    for name in spec.as_names():
        if spec.tier_of(name) == TIER_CORE:
            assert not spec.providers_of(name)  # tier-1s buy from nobody
        else:
            assert spec.providers_of(name)


def test_core_is_a_full_peering_mesh():
    spec = generate_as_graph(60, seed=2)
    cores = spec.names_in_tier(TIER_CORE)
    assert len(cores) >= 2
    for i, a in enumerate(cores):
        for b in cores[i + 1:]:
            assert b in spec.peers_of(a)


def test_stub_providers_are_transits():
    spec = generate_as_graph(40, seed=9)
    for stub in spec.names_in_tier(TIER_STUB):
        assert all(spec.tier_of(p) == TIER_TRANSIT for p in spec.providers_of(stub))


def test_too_small_graph_rejected():
    with pytest.raises(ValueError):
        generate_as_graph(3)


# ---------------------------------------------------------------------------
# Determinism (the CI contract: same seed => byte-identical edge list)
# ---------------------------------------------------------------------------

def test_same_seed_yields_byte_identical_edge_list():
    a = generate_as_graph(48, seed=11)
    b = generate_as_graph(48, seed=11)
    assert a.edge_list_bytes() == b.edge_list_bytes()
    assert a.fingerprint() == b.fingerprint()
    assert a == b


def test_different_seed_yields_different_graph():
    a = generate_as_graph(48, seed=11)
    b = generate_as_graph(48, seed=12)
    assert a.edge_list_bytes() != b.edge_list_bytes()


def test_peering_edges_are_canonicalized():
    edge = ASEdge("B", "A", "p2p")
    assert (edge.src, edge.dst) == ("A", "B")
    assert edge == ASEdge("A", "B", "p2p")


def test_unknown_edge_kind_rejected():
    with pytest.raises(ValueError):
        ASEdge("A", "B", "sibling")


# ---------------------------------------------------------------------------
# Valley-free route selection
# ---------------------------------------------------------------------------

def _edge_direction(spec, a, b):
    """'up' for customer->provider, 'down' for provider->customer, 'peer'."""
    if b in spec.providers_of(a):
        return "up"
    if b in spec.customers_of(a):
        return "down"
    assert b in spec.peers_of(a), f"{a}->{b} is not an edge"
    return "peer"


def test_all_pairs_reachable_and_valley_free():
    spec = generate_as_graph(28, seed=4)
    for dst in spec.as_names():
        hops = valley_free_next_hops(spec, dst)
        assert set(hops) == set(spec.as_names())
        for src in spec.as_names():
            path = as_path(spec, src, dst, hops)
            assert path[0] == src and path[-1] == dst
            directions = [_edge_direction(spec, a, b)
                          for a, b in zip(path, path[1:])]
            # Gao-Rexford shape: up* peer? down* — once the path stops
            # climbing it may take one peer hop and must then only descend.
            stages = "".join({"up": "u", "peer": "p", "down": "d"}[d]
                             for d in directions)
            assert "pu" not in stages and "du" not in stages and "dp" not in stages
            assert stages.count("p") <= 1


def test_customer_route_preferred_over_provider_route():
    # dst's provider must route down to dst directly, never via its own
    # providers, however short that detour looks.
    spec = generate_as_graph(24, seed=6)
    stub = spec.names_in_tier(TIER_STUB)[0]
    hops = valley_free_next_hops(spec, stub)
    for provider in spec.providers_of(stub):
        assert hops[provider] == stub


def test_longer_customer_route_beats_shorter_provider_route():
    """Regression: class preference is absolute, not length-tie-broken.

    X reaches D through the customer chain X->Y->E->D (dist 3) and could
    also climb to its provider A, which is D's other provider (dist 2).
    Gao-Rexford says the customer route wins regardless of length — the
    provider route costs money and must only be a last resort.
    """
    from repro.topogen.asgraph import ASGraphSpec

    spec = ASGraphSpec(seed=0, tiers=(
        ("A", TIER_CORE), ("E", TIER_TRANSIT), ("X", TIER_TRANSIT),
        ("Y", TIER_TRANSIT), ("D", TIER_STUB)), edges=(
        ASEdge("A", "D", "p2c"), ASEdge("E", "D", "p2c"),
        ASEdge("Y", "E", "p2c"), ASEdge("X", "Y", "p2c"),
        ASEdge("A", "X", "p2c"),
    ))
    hops = valley_free_next_hops(spec, "D")
    assert hops["X"] == "Y"  # customer route, never the provider shortcut via A
    assert as_path(spec, "X", "D", hops) == ["X", "Y", "E", "D"]


def test_next_hops_deterministic():
    spec = generate_as_graph(36, seed=8)
    dst = spec.names_in_tier(TIER_STUB)[3]
    assert valley_free_next_hops(spec, dst) == valley_free_next_hops(spec, dst)


def test_unknown_destination_rejected():
    spec = generate_as_graph(24, seed=1)
    with pytest.raises(KeyError):
        valley_free_next_hops(spec, "AS-nowhere")
