"""Epoch rollover under long-running (wall-clock) time.

A simulation crosses a handful of key epochs; a live ``runner serve``
process crosses one every ``rotation_interval`` seconds for as long as it
runs.  These tests pin the two invariants that makes that sustainable:

* the :class:`AccessRouterSecret` per-epoch caches hold only the epochs
  that can still validate fresh feedback (current + previous);
* the :class:`FeedbackStamper` verification memo drops shards from expired
  epochs instead of growing monotonically;

and the correctness property that eviction must not break: feedback
stamped just before an epoch boundary still validates just after it.
"""

from repro.core.feedback import FeedbackStamper
from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry

ROTATION = 128.0
LOCAL_AS = "AS-src"


def make_stamper(master: bytes = b"rollover"):
    secret = AccessRouterSecret("Ra", rotation_interval=ROTATION, master=master)
    registry = ASKeyRegistry(master=master)
    return secret, FeedbackStamper(secret, registry, LOCAL_AS)


# ---------------------------------------------------------------------------
# Key-cache eviction
# ---------------------------------------------------------------------------

def test_key_cache_bounded_across_many_epochs():
    secret, _ = make_stamper()
    for epoch in range(500):
        now = epoch * ROTATION + 1.0
        secret.current(now)
        secret.candidates(now)
        # Never more than current + previous (+ one transiently re-derived
        # older epoch when validation asks for a just-expired timestamp).
        assert len(secret._key_cache) <= 3
        assert len(secret._candidate_cache) <= 2
    # After the last advance only the live epochs remain.
    live = {499, 498}
    assert set(secret._key_cache) <= live
    assert set(secret._candidate_cache) <= live


def test_old_epoch_key_rederives_identically_after_eviction():
    """Eviction drops the cache, not the key: derivation is deterministic."""
    secret, _ = make_stamper()
    early_key = secret.current(1.0)
    for epoch in range(1, 50):
        secret.current(epoch * ROTATION + 1.0)
    assert 0 not in secret._key_cache
    assert secret._key_for_epoch(0) == early_key


def test_candidates_still_spans_epoch_boundary():
    secret, _ = make_stamper()
    before = secret.current(ROTATION - 1.0)
    after = secret.current(ROTATION + 1.0)
    assert before != after
    assert before in secret.candidates(ROTATION + 1.0)
    assert after in secret.candidates(ROTATION + 1.0)


# ---------------------------------------------------------------------------
# Verification-memo eviction
# ---------------------------------------------------------------------------

def test_verify_memo_evicts_expired_epoch_shards():
    _, stamper = make_stamper()
    for epoch in range(300):
        now = epoch * ROTATION + 1.0
        # A fresh distinct feedback value per epoch, validated repeatedly —
        # the live-policer pattern (one validation memo entry per sender per
        # control interval, consulted once per packet).
        feedback = stamper.stamp_nop("h1", "h2", now)
        for _ in range(3):
            assert stamper.validate(feedback, "h1", "h2", now, expiration=4.0)
        assert len(stamper._verify_cache) <= 2, (
            f"memo held shards for epochs {sorted(stamper._verify_cache)}"
        )
    assert set(stamper._verify_cache) <= {299, 298}


def test_verify_memo_entries_survive_within_live_epochs():
    """Eviction must not throw away the memo hit for still-fresh feedback."""
    _, stamper = make_stamper()
    feedback = stamper.stamp_nop("h1", "h2", 10.0)
    assert stamper.validate(feedback, "h1", "h2", 10.0, expiration=4.0)
    shard = stamper._verify_cache[0]
    assert len(shard) == 1
    # Re-validating within the epoch is a pure memo hit on the same shard.
    assert stamper.validate(feedback, "h1", "h2", 11.0, expiration=4.0)
    assert stamper._verify_cache[0] is shard


def test_feedback_stamped_before_boundary_validates_after():
    """Rollover correctness: the previous epoch's key still verifies."""
    _, stamper = make_stamper()
    ts = ROTATION - 0.5
    feedback = stamper.stamp_nop("h1", "h2", ts)
    # Validation happens 1.5 s later, in the next epoch.
    assert stamper.validate(feedback, "h1", "h2", ts + 1.5, expiration=4.0)


def test_stale_feedback_rejected_after_many_epochs():
    _, stamper = make_stamper()
    feedback = stamper.stamp_nop("h1", "h2", 1.0)
    # Long-lived process: clock is hundreds of epochs later.
    assert not stamper.validate(
        feedback, "h1", "h2", 400 * ROTATION, expiration=4.0
    )
