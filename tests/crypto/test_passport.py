"""Tests for the simplified Passport source authentication substrate."""

from repro.crypto.keys import ASKeyRegistry
from repro.passport.passport import (
    PASSPORT_HEADER_BYTES,
    PassportHeader,
    PassportStamper,
    PassportValidator,
)
from repro.simulator.packet import Packet


def make_packet():
    return Packet(src="alice", dst="bob", size_bytes=1500, flow_id="f1", src_as="AS-src")


def test_stamp_adds_macs_for_downstream_ases():
    registry = ASKeyRegistry(master=b"m")
    stamper = PassportStamper(registry, "AS-src")
    packet = make_packet()
    header = stamper.stamp(packet, ["AS-src", "AS-transit", "AS-dst"])
    assert set(header.macs) == {"AS-transit", "AS-dst"}
    assert packet.get_header("passport") is header


def test_validator_accepts_authentic_packet():
    registry = ASKeyRegistry(master=b"m")
    stamper = PassportStamper(registry, "AS-src")
    packet = make_packet()
    stamper.stamp(packet, ["AS-transit", "AS-dst"])
    assert PassportValidator(registry, "AS-transit").validate(packet)
    # The transit AS consumed its MAC; the destination AS can still validate.
    assert PassportValidator(registry, "AS-dst").validate(packet)


def test_validator_rejects_spoofed_source_as():
    registry = ASKeyRegistry(master=b"m")
    packet = make_packet()
    # The attacker claims to be AS-victim but only knows its own keys.
    attacker_stamper = PassportStamper(registry, "AS-src")
    header = attacker_stamper.stamp(packet, ["AS-transit"])
    header.source_as = "AS-victim"
    assert not PassportValidator(registry, "AS-transit").validate(packet)


def test_validator_rejects_tampered_packet():
    registry = ASKeyRegistry(master=b"m")
    stamper = PassportStamper(registry, "AS-src")
    packet = make_packet()
    stamper.stamp(packet, ["AS-transit"])
    packet.size_bytes += 100  # on-path size inflation (§5.2.2)
    assert not PassportValidator(registry, "AS-transit").validate(packet)


def test_validator_rejects_packet_without_header():
    registry = ASKeyRegistry(master=b"m")
    assert not PassportValidator(registry, "AS-transit").validate(make_packet())


def test_validator_rejects_missing_mac_for_local_as():
    registry = ASKeyRegistry(master=b"m")
    stamper = PassportStamper(registry, "AS-src")
    packet = make_packet()
    stamper.stamp(packet, ["AS-dst"])  # no MAC for AS-transit
    assert not PassportValidator(registry, "AS-transit").validate(packet)


def test_validation_counters():
    registry = ASKeyRegistry(master=b"m")
    stamper = PassportStamper(registry, "AS-src")
    validator = PassportValidator(registry, "AS-transit")
    good = make_packet()
    stamper.stamp(good, ["AS-transit"])
    validator.validate(good)
    validator.validate(make_packet())  # missing header: not counted as rejected
    bad = make_packet()
    stamper.stamp(bad, ["AS-other"])
    validator.validate(bad)
    assert validator.validated == 1
    assert validator.rejected == 1


def test_header_wire_size_constant():
    header = PassportHeader(source_as="AS-src")
    assert header.wire_size() == PASSPORT_HEADER_BYTES == 24
