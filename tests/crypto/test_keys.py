"""Tests for access-router secrets and AS pairwise keys."""

from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry


def test_secret_stable_within_rotation_interval():
    secret = AccessRouterSecret("Ra", rotation_interval=100.0, master=b"m")
    assert secret.current(10.0) == secret.current(99.0)


def test_secret_rotates_across_intervals():
    secret = AccessRouterSecret("Ra", rotation_interval=100.0, master=b"m")
    assert secret.current(10.0) != secret.current(150.0)


def test_candidates_include_previous_epoch():
    secret = AccessRouterSecret("Ra", rotation_interval=100.0, master=b"m")
    old = secret.current(90.0)
    assert old in secret.candidates(110.0)


def test_candidates_at_time_zero():
    secret = AccessRouterSecret("Ra", rotation_interval=100.0, master=b"m")
    assert secret.current(0.0) in secret.candidates(0.0)


def test_different_routers_have_different_secrets():
    a = AccessRouterSecret("Ra", master=b"m")
    b = AccessRouterSecret("Rb", master=b"m")
    assert a.current(0.0) != b.current(0.0)


def test_as_keys_are_symmetric():
    registry = ASKeyRegistry(master=b"m")
    assert registry.key_for("AS1", "AS2") == registry.key_for("AS2", "AS1")


def test_as_keys_differ_per_pair():
    registry = ASKeyRegistry(master=b"m")
    assert registry.key_for("AS1", "AS2") != registry.key_for("AS1", "AS3")


def test_as_keys_differ_across_registries():
    assert ASKeyRegistry(master=b"m1").key_for("A", "B") != \
        ASKeyRegistry(master=b"m2").key_for("A", "B")


def test_as_key_cached_instance_is_stable():
    registry = ASKeyRegistry(master=b"m")
    assert registry.key_for("A", "B") is registry.key_for("B", "A")
