"""Tests for the keyed MAC primitive."""

import pytest

from repro.crypto.mac import MAC_BYTES, compute_mac, derive_key, mac_equal


def test_mac_is_deterministic():
    assert compute_mac(b"key", "a", "b", 1.0) == compute_mac(b"key", "a", "b", 1.0)


def test_mac_default_length_matches_header_field():
    assert len(compute_mac(b"key", "x")) == MAC_BYTES == 4


def test_mac_changes_with_key():
    assert compute_mac(b"key1", "a") != compute_mac(b"key2", "a")


def test_mac_changes_with_any_field():
    base = compute_mac(b"key", "src", "dst", 10.0, "link")
    assert compute_mac(b"key", "src2", "dst", 10.0, "link") != base
    assert compute_mac(b"key", "src", "dst2", 10.0, "link") != base
    assert compute_mac(b"key", "src", "dst", 11.0, "link") != base
    assert compute_mac(b"key", "src", "dst", 10.0, "link2") != base


def test_mac_field_boundaries_are_unambiguous():
    # Length-prefixing means ("ab", "c") and ("a", "bc") must differ.
    assert compute_mac(b"key", "ab", "c") != compute_mac(b"key", "a", "bc")


def test_mac_supports_mixed_field_types():
    mac = compute_mac(b"key", "s", 42, 3.14, b"raw", None, True)
    assert len(mac) == MAC_BYTES


def test_mac_rejects_empty_key():
    with pytest.raises(ValueError):
        compute_mac(b"", "x")


def test_mac_rejects_unsupported_type():
    with pytest.raises(TypeError):
        compute_mac(b"key", ["list"])


def test_mac_custom_length():
    assert len(compute_mac(b"key", "x", length=16)) == 16


def test_mac_equal_constant_time_comparison():
    mac = compute_mac(b"key", "x")
    assert mac_equal(mac, bytes(mac))
    assert not mac_equal(mac, b"\x00" * len(mac))


def test_float_quantization_keeps_equal_timestamps_equal():
    assert compute_mac(b"k", 1.000000) == compute_mac(b"k", 1.0)
    assert compute_mac(b"k", 1.000001) != compute_mac(b"k", 1.000002)


def test_derive_key_differs_per_label():
    master = b"master"
    assert derive_key(master, "a") != derive_key(master, "b")
    assert len(derive_key(master, "a")) == 16
