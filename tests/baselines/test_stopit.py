"""Tests for the StopIt baseline."""

import pytest

from repro.baselines.stopit import FilterRegistry, StopItAccessRouter, stopit_queue_factory
from repro.simulator.packet import Packet
from repro.simulator.topology import Topology
from repro.simulator.trace import ThroughputMonitor
from repro.transport.udp import UdpSender, UdpSink


def build_stopit_network(bottleneck_bps=1e6):
    topo = Topology()
    sim = topo.clock
    registry = FilterRegistry(sim, install_delay_s=0.1)
    topo.add_host("good", as_name="A")
    topo.add_host("bad", as_name="A")
    topo.add_host("victim", as_name="B")
    topo.add_router("Ra", as_name="A", router_cls=StopItAccessRouter, registry=registry)
    topo.add_router("Rb", as_name="B", router_cls=StopItAccessRouter, registry=registry)
    topo.add_duplex_link("good", "Ra", 100e6, 0.001)
    topo.add_duplex_link("bad", "Ra", 100e6, 0.001)
    topo.add_duplex_link("Ra", "Rb", bottleneck_bps, 0.005,
                         queue_factory=stopit_queue_factory(sim))
    topo.add_duplex_link("victim", "Rb", 100e6, 0.001)
    topo.finalize()
    registry.register_host("good", "Ra")
    registry.register_host("bad", "Ra")
    return topo, registry


def test_filter_blocks_attacker_at_source_access_router():
    topo, registry = build_stopit_network()
    monitor = ThroughputMonitor(topo.clock, start_time=2.0)
    UdpSink(topo.clock, topo.host("victim"), monitor=monitor)
    UdpSender(topo.clock, topo.host("bad"), "victim", rate_bps=2e6).start()
    UdpSender(topo.clock, topo.host("good"), "victim", rate_bps=500e3).start()
    registry.install_filter("bad", "victim")
    topo.run(until=10.0)
    monitor.stop()
    assert monitor.throughput_bps("bad") == 0.0
    assert monitor.throughput_bps("good") == pytest.approx(500e3, rel=0.1)
    assert topo.router("Ra").filtered_packets > 0


def test_filter_installation_is_delayed():
    topo, registry = build_stopit_network()
    sink = UdpSink(topo.clock, topo.host("victim"))
    UdpSender(topo.clock, topo.host("bad"), "victim", rate_bps=1e6).start()
    registry.install_filter("bad", "victim")
    topo.run(until=0.05)  # before the install delay elapses
    assert sink.packets_received > 0


def test_filter_for_unknown_host_is_ignored():
    topo, registry = build_stopit_network()
    registry.install_filter("stranger", "victim")
    topo.run(until=1.0)  # must not raise


def test_filter_only_blocks_matching_destination():
    topo, registry = build_stopit_network()
    router = topo.router("Ra")
    router.add_filter("bad", "other-victim")
    packet = Packet(src="bad", dst="victim")
    assert router.admit_from_host(packet, topo.link_between("bad", "Ra")) is True


def test_filter_removal_restores_traffic():
    topo, registry = build_stopit_network()
    router = topo.router("Ra")
    router.add_filter("bad", "victim")
    packet = Packet(src="bad", dst="victim")
    assert router.admit_from_host(packet, topo.link_between("bad", "Ra")) is False
    router.remove_filter("bad", "victim")
    assert router.admit_from_host(packet, topo.link_between("bad", "Ra")) is True


def test_fallback_hierarchical_fairness_without_filters():
    """With no filters installed (colluding receivers), StopIt falls back to
    hierarchical fair queuing and behaves like per-sender FQ."""
    topo, _ = build_stopit_network(bottleneck_bps=1e6)
    monitor = ThroughputMonitor(topo.clock, start_time=3.0)
    UdpSink(topo.clock, topo.host("victim"), monitor=monitor)
    UdpSender(topo.clock, topo.host("bad"), "victim", rate_bps=5e6).start()
    UdpSender(topo.clock, topo.host("good"), "victim", rate_bps=2e6).start()
    topo.run(until=13.0)
    monitor.stop()
    good = monitor.throughput_bps("good")
    bad = monitor.throughput_bps("bad")
    assert good == pytest.approx(bad, rel=0.2)
