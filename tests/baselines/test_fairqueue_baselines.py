"""Tests for the FQ baseline and the shared channel queue."""

import pytest

from repro.baselines.common import ChannelQueue
from repro.baselines.fq import FairQueueRouter, fq_queue_factory
from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import Topology
from repro.simulator.trace import ThroughputMonitor
from repro.transport.udp import UdpSender, UdpSink


def test_fq_queue_factory_builds_per_sender_drr():
    queue = fq_queue_factory()(1e6)
    a = Packet(src="a", dst="d")
    b = Packet(src="b", dst="d")
    queue.enqueue(a)
    queue.enqueue(b)
    assert queue.active_flows == 2


def test_fq_gives_senders_equal_shares_under_flood():
    topo = Topology()
    topo.add_host("good", as_name="A")
    topo.add_host("bad", as_name="A")
    topo.add_host("dst", as_name="B")
    topo.add_router("R1", as_name="A", router_cls=FairQueueRouter)
    topo.add_router("R2", as_name="B", router_cls=FairQueueRouter)
    topo.add_duplex_link("good", "R1", 100e6, 0.001)
    topo.add_duplex_link("bad", "R1", 100e6, 0.001)
    topo.add_duplex_link("R1", "R2", 1e6, 0.005, queue_factory=fq_queue_factory())
    topo.add_duplex_link("R2", "dst", 100e6, 0.001)
    topo.finalize()
    monitor = ThroughputMonitor(topo.clock, start_time=2.0)
    UdpSink(topo.clock, topo.host("dst"), monitor=monitor)
    UdpSender(topo.clock, topo.host("good"), "dst", rate_bps=2e6).start()
    UdpSender(topo.clock, topo.host("bad"), "dst", rate_bps=5e6).start()
    topo.run(until=10.0)
    monitor.stop()
    good = monitor.throughput_bps("good")
    bad = monitor.throughput_bps("bad")
    assert good == pytest.approx(bad, rel=0.15)
    assert good == pytest.approx(0.5e6, rel=0.2)


# ---------------------------------------------------------------------------
# ChannelQueue (shared by the TVA+/StopIt baselines)
# ---------------------------------------------------------------------------

def make_channel_queue(capacity_bps=1e6):
    sim = Simulator()
    return sim, ChannelQueue(
        sim, capacity_bps,
        request_queue=DropTailQueue(capacity_bytes=50_000),
        regular_queue=DropTailQueue(capacity_bytes=50_000),
    )


def test_channel_queue_request_cap_enforced():
    sim, queue = make_channel_queue(capacity_bps=1e6)
    for _ in range(200):
        queue.enqueue(Packet(src="s", dst="d", size_bytes=92, ptype=PacketType.REQUEST))
    sim._now = 1.0
    served = 0
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        served += packet.size_bytes
    assert served * 8 <= 0.05 * 1e6 * 1.2


def test_channel_queue_regular_unaffected_by_request_backlog():
    sim, queue = make_channel_queue()
    for _ in range(100):
        queue.enqueue(Packet(src="s", dst="d", size_bytes=92, ptype=PacketType.REQUEST))
    regular = Packet(src="s", dst="d", ptype=PacketType.REGULAR)
    queue.enqueue(regular)
    # Even with request backlog and no budget, the regular packet flows.
    packets = [queue.dequeue() for _ in range(5)]
    assert regular in packets


def test_channel_queue_time_until_ready():
    sim, queue = make_channel_queue()
    for _ in range(100):
        queue.enqueue(Packet(src="s", dst="d", size_bytes=92, ptype=PacketType.REQUEST))
    while queue.dequeue() is not None:
        pass
    assert len(queue) > 0
    assert queue.time_until_ready() > 0


def test_channel_queue_legacy_lowest_priority():
    sim, queue = make_channel_queue()
    legacy = Packet(src="s", dst="d", ptype=PacketType.LEGACY)
    regular = Packet(src="s", dst="d", ptype=PacketType.REGULAR)
    queue.enqueue(legacy)
    queue.enqueue(regular)
    assert queue.dequeue() is regular
