"""Tests for the TVA+ baseline."""

import pytest

from repro.baselines.tva import Capability, CapabilityEndHost, TvaRouter, tva_queue_factory
from repro.simulator.packet import Packet, PacketType
from repro.simulator.topology import Topology
from repro.simulator.trace import ThroughputMonitor
from repro.transport.udp import UdpSender, UdpSink


def build_tva_pair(bottleneck_bps=1e6):
    topo = Topology()
    sim = topo.clock
    topo.add_host("src", as_name="A")
    topo.add_host("dst", as_name="B")
    topo.add_router("R1", as_name="A", router_cls=TvaRouter)
    topo.add_router("R2", as_name="B", router_cls=TvaRouter)
    topo.add_duplex_link("src", "R1", 100e6, 0.001)
    topo.add_duplex_link("R1", "R2", bottleneck_bps, 0.005,
                         queue_factory=tva_queue_factory(sim))
    topo.add_duplex_link("R2", "dst", 100e6, 0.001)
    topo.finalize()
    return topo


def test_sender_without_capability_sends_requests():
    topo = build_tva_pair()
    CapabilityEndHost(topo.clock, topo.host("src"))
    packet = Packet(src="src", dst="dst", ptype=PacketType.REGULAR, flow_id="f")
    topo.host("src").send(packet)
    assert packet.is_request


def test_receiver_grants_capability_and_sender_uses_it():
    topo = build_tva_pair()
    sender_stack = CapabilityEndHost(topo.clock, topo.host("src"))
    CapabilityEndHost(topo.clock, topo.host("dst"), send_grant_packets=True)
    UdpSink(topo.clock, topo.host("dst"))
    UdpSender(topo.clock, topo.host("src"), "dst", rate_bps=200e3).start()
    topo.run(until=2.0)
    assert "dst" in sender_stack.capabilities
    # Subsequent packets travel as regular packets carrying the capability.
    packet = Packet(src="src", dst="dst", ptype=PacketType.REGULAR, flow_id="f2")
    topo.host("src").send(packet)
    assert packet.is_regular and packet.get_header("tva") is not None


def test_victim_denies_capability_to_attacker():
    topo = build_tva_pair()
    attacker_stack = CapabilityEndHost(topo.clock, topo.host("src"))
    CapabilityEndHost(topo.clock, topo.host("dst"), send_grant_packets=True,
                      grant_policy=lambda peer: peer != "src")
    UdpSink(topo.clock, topo.host("dst"))
    UdpSender(topo.clock, topo.host("src"), "dst", rate_bps=200e3).start()
    topo.run(until=2.0)
    assert "dst" not in attacker_stack.capabilities


def test_router_demotes_regular_packet_without_capability():
    topo = build_tva_pair()
    router = topo.router("R1")
    packet = Packet(src="src", dst="dst", ptype=PacketType.REGULAR)
    router.admit_from_host(packet, topo.link_between("src", "R1"))
    assert packet.is_request


def test_transit_router_demotes_mismatched_capability():
    topo = build_tva_pair()
    router = topo.router("R2")
    packet = Packet(src="src", dst="dst", ptype=PacketType.REGULAR)
    packet.set_header("tva", Capability(sender="other", receiver="dst", token=b"xx"))
    router.on_transit(packet, None)
    assert packet.is_request


def test_capability_verification():
    topo = build_tva_pair()
    stack = CapabilityEndHost(topo.clock, topo.host("dst"))
    good = stack._make_grant("src")
    assert stack.verify(good)
    assert not stack.verify(Capability(sender="src", receiver="dst", token=b"1234"))


def test_per_destination_fairness_penalizes_shared_victim():
    """The regular channel is fair-queued per destination: one victim queue
    competes with each colluder queue (the Fig. 9 TVA+ weakness)."""
    topo = Topology()
    sim = topo.clock
    for name in ("u", "a1", "a2", "a3"):
        topo.add_host(name, as_name="SRC")
    for name in ("victim", "c1", "c2", "c3"):
        topo.add_host(name, as_name="DST")
    topo.add_router("R1", as_name="SRC", router_cls=TvaRouter)
    topo.add_router("R2", as_name="DST", router_cls=TvaRouter)
    for name in ("u", "a1", "a2", "a3"):
        topo.add_duplex_link(name, "R1", 100e6, 0.001)
    topo.add_duplex_link("R1", "R2", 1e6, 0.005, queue_factory=tva_queue_factory(sim))
    for name in ("victim", "c1", "c2", "c3"):
        topo.add_duplex_link(name, "R2", 100e6, 0.001)
    topo.finalize()
    monitor = ThroughputMonitor(sim, start_time=5.0)
    for sender in ("u", "a1", "a2", "a3"):
        CapabilityEndHost(sim, topo.host(sender))
    for receiver in ("victim", "c1", "c2", "c3"):
        CapabilityEndHost(sim, topo.host(receiver), send_grant_packets=True)
        UdpSink(sim, topo.host(receiver), monitor=monitor)
    # One legitimate-ish sender to the victim, three flooders to colluders.
    UdpSender(sim, topo.host("u"), "victim", rate_bps=2e6).start()
    for attacker, colluder in (("a1", "c1"), ("a2", "c2"), ("a3", "c3")):
        UdpSender(sim, topo.host(attacker), colluder, rate_bps=2e6).start()
    topo.run(until=20.0)
    monitor.stop()
    user = monitor.throughput_bps("u")
    attackers = [monitor.throughput_bps(a) for a in ("a1", "a2", "a3")]
    # Per-destination FQ: every destination (victim or colluder) gets ~1/4.
    assert user == pytest.approx(0.25e6, rel=0.25)
    assert sum(attackers) == pytest.approx(0.75e6, rel=0.2)
