"""Property tests for the wire codec (repro.runtime.codec).

Three families, mirroring ``test_feedback_roundtrip.py``:

* ``decode(encode(p)) == p`` for every packet type, with and without the
  NetFence header, feedback of every kind, and multi-bottleneck chains;
* ``encode(decode(b)) == b`` — the encoding is canonical, so a decoded
  frame re-encodes byte-identically;
* malformed bytes (truncations, flipped bytes, trailing garbage, bad magic)
  either raise :class:`CodecError` or decode to a frame — never any other
  exception type;
* MACs stamped before encoding verify after a decode round trip, including
  timestamps that do not sit on a microsecond boundary.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feedback import (
    Feedback,
    FeedbackAction,
    FeedbackMode,
    FeedbackStamper,
)
from repro.core.header import HEADER_KEY, NetFenceHeader
from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry
from repro.crypto.mac import quantize_ts, unquantize_ts
from repro.obs.spans import TRACE_KEY, SpanContext
from repro.runtime.codec import (
    MAGIC,
    CodecError,
    decode_frame,
    decode_packet,
    encode_hello,
    encode_packet,
)
from repro.simulator.packet import Packet, PacketType

hosts = st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8)
links = st.sampled_from(["L1", "L2", "bottleneck", "core-link"])
#: Timestamps on the microsecond grid round-trip exactly through the wire's
#: i64-microsecond representation, so equality assertions are exact.
wire_timestamps = st.integers(min_value=0, max_value=2_000_000_000_000_000).map(
    unquantize_ts
)

feedback_values = st.builds(
    Feedback,
    mode=st.sampled_from([FeedbackMode.NOP, FeedbackMode.MON]),
    link=st.one_of(st.none(), links),
    action=st.sampled_from([FeedbackAction.INCR, FeedbackAction.DECR]),
    ts=wire_timestamps,
    mac=st.binary(min_size=0, max_size=16),
    token_nop=st.one_of(st.none(), st.binary(min_size=0, max_size=16)),
    chain=st.one_of(
        st.none(),
        st.lists(
            st.tuples(links, st.sampled_from(["incr", "decr"])),
            min_size=0,
            max_size=4,
        ).map(tuple),
    ),
)

headers = st.builds(
    NetFenceHeader,
    feedback=st.one_of(st.none(), feedback_values),
    returned=st.one_of(st.none(), feedback_values),
    priority=st.integers(min_value=0, max_value=10),
)

span_ids = st.integers(min_value=0, max_value=(1 << 64) - 1)
trace_contexts = st.builds(
    SpanContext,
    trace_id=span_ids,
    span_id=span_ids,
    parent_id=span_ids,
)


@st.composite
def packets(draw):
    packet = Packet(
        src=draw(hosts),
        dst=draw(hosts),
        size_bytes=draw(st.integers(min_value=0, max_value=65_535)),
        ptype=draw(st.sampled_from(list(PacketType))),
        flow_id=draw(st.text(alphabet="abc-0123456789", max_size=12)),
        protocol=draw(st.sampled_from(["udp", "tcp", "netfence-fb"])),
        created_at=draw(wire_timestamps),
        priority=draw(st.integers(min_value=0, max_value=10)),
        src_as=draw(st.one_of(st.none(), hosts)),
        dst_as=draw(st.one_of(st.none(), hosts)),
    )
    header = draw(st.one_of(st.none(), headers))
    if header is not None:
        packet.set_header(HEADER_KEY, header)
    trace = draw(st.one_of(st.none(), trace_contexts))
    if trace is not None:
        packet.set_header(TRACE_KEY, trace)
    return packet


# ---------------------------------------------------------------------------
# decode(encode(p)) == p
# ---------------------------------------------------------------------------

@given(packets())
@settings(max_examples=200)
def test_packet_round_trip(packet):
    decoded = decode_packet(encode_packet(packet))
    assert decoded == packet
    assert decoded.ptype is packet.ptype
    header = packet.headers.get(HEADER_KEY)
    if header is not None:
        assert decoded.headers[HEADER_KEY] == header


@given(hosts, st.one_of(st.none(), hosts))
def test_hello_round_trip(name, as_name):
    kind, value = decode_frame(encode_hello(name, as_name))
    assert kind == "hello"
    assert value == (name, as_name)


# ---------------------------------------------------------------------------
# encode(decode(b)) == b  (canonical encoding)
# ---------------------------------------------------------------------------

@given(packets())
@settings(max_examples=200)
def test_encoding_is_canonical(packet):
    wire = encode_packet(packet)
    assert encode_packet(decode_packet(wire)) == wire


@given(hosts, st.one_of(st.none(), hosts))
def test_hello_encoding_is_canonical(name, as_name):
    wire = encode_hello(name, as_name)
    _, (got_name, got_as) = decode_frame(wire)
    assert encode_hello(got_name, got_as) == wire


# ---------------------------------------------------------------------------
# Malformed input rejection
# ---------------------------------------------------------------------------

@given(packets(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=200)
def test_truncation_rejected(packet, cut):
    wire = encode_packet(packet)
    truncated = wire[: cut % len(wire)]
    with pytest.raises(CodecError):
        decode_frame(truncated)


@given(packets(), st.binary(min_size=1, max_size=8))
@settings(max_examples=100)
def test_trailing_garbage_rejected(packet, tail):
    with pytest.raises(CodecError):
        decode_frame(encode_packet(packet) + tail)


@given(st.binary(max_size=64))
def test_arbitrary_bytes_never_crash(data):
    """Random bytes either decode or raise CodecError — nothing else."""
    try:
        decode_frame(data)
    except CodecError:
        pass


@given(packets(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=200)
def test_bit_flips_never_crash(packet, position):
    wire = bytearray(encode_packet(packet))
    wire[position % len(wire)] ^= 0xFF
    try:
        decode_frame(bytes(wire))
    except CodecError:
        pass


def test_bad_magic_rejected():
    wire = bytearray(encode_packet(Packet(src="a", dst="b")))
    assert wire[:2] == MAGIC
    wire[0] ^= 0xFF
    with pytest.raises(CodecError):
        decode_frame(bytes(wire))


def test_unknown_version_rejected():
    wire = bytearray(encode_packet(Packet(src="a", dst="b")))
    wire[2] = 0x7F
    with pytest.raises(CodecError):
        decode_frame(bytes(wire))


def test_unknown_kind_rejected():
    wire = bytearray(encode_packet(Packet(src="a", dst="b")))
    wire[3] = 0x7F
    with pytest.raises(CodecError):
        decode_frame(bytes(wire))


# ---------------------------------------------------------------------------
# Trace context (optional trailing field; old frames must be unaffected)
# ---------------------------------------------------------------------------

@given(trace_contexts, hosts, hosts)
@settings(max_examples=100)
def test_trace_context_round_trips(trace, src, dst):
    packet = Packet(src=src, dst=dst)
    packet.set_header(TRACE_KEY, trace)
    wire = encode_packet(packet)
    decoded = decode_packet(wire)
    assert decoded.headers[TRACE_KEY] == trace
    assert isinstance(decoded.headers[TRACE_KEY], SpanContext)
    assert encode_packet(decoded) == wire


def test_frames_without_trace_context_are_unchanged():
    # A traceless frame must be byte-identical to what the pre-trace codec
    # produced: same version byte, no trace flag bit, no extra bytes.
    bare = Packet(src="a", dst="b")
    wire = encode_packet(bare)
    traced = Packet(src="a", dst="b")
    traced.set_header(TRACE_KEY, SpanContext(1, 2, 3))
    assert len(encode_packet(traced)) == len(wire) + 24  # 3 x u64, flag reused
    decoded = decode_packet(wire)
    assert TRACE_KEY not in decoded.headers
    assert encode_packet(decoded) == wire


def test_invalid_trace_context_rejected_at_encode():
    packet = Packet(src="a", dst="b")
    packet.set_header(TRACE_KEY, ("not", "a", "context"))
    with pytest.raises(CodecError):
        encode_packet(packet)
    packet.set_header(TRACE_KEY, SpanContext(1 << 64, 1, 0))  # out of range
    with pytest.raises(CodecError):
        encode_packet(packet)


# ---------------------------------------------------------------------------
# MAC transparency across the wire
# ---------------------------------------------------------------------------

LOCAL_AS = "AS-src"

#: Arbitrary float timestamps (not µs-aligned): the reconstructed ts may
#: differ by sub-microsecond noise, but the MAC hashes the quantized value,
#: so validation must still succeed.
float_timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def make_stamper(master: bytes = b"codec-roundtrip"):
    secret = AccessRouterSecret("Ra", master=master)
    registry = ASKeyRegistry(master=master)
    return FeedbackStamper(secret, registry, LOCAL_AS)


@given(hosts, hosts, float_timestamps)
@settings(max_examples=100)
def test_stamped_nop_verifies_after_wire_round_trip(src, dst, ts):
    stamper = make_stamper()
    packet = Packet(src=src, dst=dst, ptype=PacketType.REGULAR)
    packet.set_header(
        HEADER_KEY, NetFenceHeader(feedback=stamper.stamp_nop(src, dst, ts))
    )
    decoded = decode_packet(encode_packet(packet))
    feedback = decoded.headers[HEADER_KEY].feedback
    assert quantize_ts(feedback.ts) == quantize_ts(ts)
    assert stamper.validate(feedback, src, dst, ts, expiration=4.0)


@given(hosts, hosts, links, float_timestamps)
@settings(max_examples=100)
def test_stamped_incr_verifies_after_wire_round_trip(src, dst, link, ts):
    stamper = make_stamper()
    packet = Packet(src=src, dst=dst, ptype=PacketType.REGULAR)
    packet.set_header(
        HEADER_KEY, NetFenceHeader(feedback=stamper.stamp_incr(src, dst, link, ts))
    )
    decoded = decode_packet(encode_packet(packet))
    feedback = decoded.headers[HEADER_KEY].feedback
    assert stamper.validate(feedback, src, dst, ts, expiration=4.0)


@given(hosts, hosts, links, float_timestamps, st.integers(min_value=0, max_value=3))
@settings(max_examples=100)
def test_tampered_wire_mac_rejected(src, dst, link, ts, flip):
    stamper = make_stamper()
    feedback = stamper.stamp_incr(src, dst, link, ts)
    corrupted = bytes(
        b ^ (0xFF if i == flip % len(feedback.mac) else 0)
        for i, b in enumerate(feedback.mac)
    )
    packet = Packet(src=src, dst=dst, ptype=PacketType.REGULAR)
    packet.set_header(
        HEADER_KEY,
        NetFenceHeader(feedback=dataclasses.replace(feedback, mac=corrupted)),
    )
    decoded = decode_packet(encode_packet(packet))
    assert not stamper.validate(
        decoded.headers[HEADER_KEY].feedback, src, dst, ts, expiration=4.0
    )


@given(hosts, hosts, float_timestamps)
@settings(max_examples=50)
def test_trace_context_is_mac_transparent(src, dst, ts):
    # Attaching a trace context must not perturb feedback MAC validation:
    # the MAC never hashes the trace field.
    stamper = make_stamper()
    packet = Packet(src=src, dst=dst, ptype=PacketType.REGULAR)
    packet.set_header(
        HEADER_KEY, NetFenceHeader(feedback=stamper.stamp_nop(src, dst, ts))
    )
    packet.set_header(TRACE_KEY, SpanContext(11, 22, 33))
    decoded = decode_packet(encode_packet(packet))
    assert decoded.headers[TRACE_KEY] == SpanContext(11, 22, 33)
    assert stamper.validate(decoded.headers[HEADER_KEY].feedback,
                            src, dst, ts, expiration=4.0)
