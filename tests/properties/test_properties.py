"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import AimdFluidModel, FluidSender, fair_share_lower_bound
from repro.analysis.metrics import jain_fairness_index
from repro.core.aslevel import max_min_fair_shares
from repro.core.feedback import FeedbackStamper
from repro.core.params import NetFenceParams
from repro.core.ratelimiter import RegularRateLimiter, RequestRateLimiter
from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry
from repro.crypto.mac import compute_mac
from repro.simulator.engine import Simulator
from repro.simulator.fairqueue import DRRQueue
from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import DropTailQueue, LevelPriorityQueue


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False, allow_infinity=False), min_size=1, max_size=50))
def test_jain_index_always_within_bounds(values):
    index = jain_fairness_index(values)
    assert 0.0 <= index <= 1.0 + 1e-9
    if any(v > 0 for v in values):
        assert index >= 1.0 / len(values) - 1e-9


@given(st.lists(st.floats(min_value=1.0, max_value=1e6, allow_nan=False), min_size=1,
                max_size=20),
       st.floats(min_value=0.01, max_value=1000.0))
def test_jain_index_scale_invariance(values, factor):
    assert math.isclose(jain_fairness_index(values),
                        jain_fairness_index([v * factor for v in values]),
                        rel_tol=1e-6)


# ---------------------------------------------------------------------------
# Max-min fairness
# ---------------------------------------------------------------------------

@given(
    st.floats(min_value=1.0, max_value=1e7),
    st.dictionaries(st.text(min_size=1, max_size=5),
                    st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
                    min_size=1, max_size=10),
)
def test_max_min_shares_never_exceed_capacity_or_demand(capacity, demands):
    shares = max_min_fair_shares(capacity, demands)
    assert sum(shares.values()) <= capacity * (1 + 1e-6) + 1e-6
    for key, share in shares.items():
        assert share <= demands[key] + 1e-6 or math.isclose(share, demands[key], rel_tol=1e-6)


# ---------------------------------------------------------------------------
# MAC
# ---------------------------------------------------------------------------

@given(st.binary(min_size=1, max_size=32), st.text(max_size=20), st.text(max_size=20))
def test_mac_deterministic_and_sensitive(key, a, b):
    mac1 = compute_mac(key, a, b)
    assert mac1 == compute_mac(key, a, b)
    if a != b:
        assert compute_mac(key, a, b) != compute_mac(key, b, a) or a == b


@given(st.text(min_size=1, max_size=10), st.text(min_size=1, max_size=10),
       st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_feedback_round_trip_always_validates(src, dst, ts):
    secret = AccessRouterSecret("Ra", master=b"prop")
    stamper = FeedbackStamper(secret, ASKeyRegistry(master=b"prop"), "AS")
    nop = stamper.stamp_nop(src, dst, ts)
    assert stamper.validate(nop, src, dst, ts, expiration=4.0)


# ---------------------------------------------------------------------------
# Queues
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=60))
def test_droptail_conservation(sizes):
    queue = DropTailQueue(capacity_bytes=20_000)
    accepted = 0
    for size in sizes:
        if queue.enqueue(Packet(src="s", dst="d", size_bytes=size)):
            accepted += 1
    drained = 0
    while queue.dequeue() is not None:
        drained += 1
    assert drained == accepted
    assert queue.stats.dropped == len(sizes) - accepted


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=100, max_value=1500)),
                min_size=1, max_size=80))
def test_drr_conservation_and_no_reordering_within_flow(items):
    queue = DRRQueue(per_flow_capacity_bytes=10**6)
    sent = {"a": [], "b": [], "c": []}
    for flow, size in items:
        packet = Packet(src=flow, dst="d", size_bytes=size)
        if queue.enqueue(packet):
            sent[flow].append(packet.uid)
    received = {"a": [], "b": [], "c": []}
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        received[packet.src].append(packet.uid)
    assert received == sent  # per-flow FIFO order and conservation


@given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=50))
def test_level_priority_queue_serves_highest_first(levels):
    queue = LevelPriorityQueue(capacity_bytes=10**6, max_level=12)
    for level in levels:
        queue.enqueue(Packet(src="s", dst="d", size_bytes=92,
                             ptype=PacketType.REQUEST, priority=level))
    served = []
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        served.append(packet.priority)
    assert served == sorted(levels, reverse=True)


# ---------------------------------------------------------------------------
# Rate limiters
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=20)
def test_request_limiter_admission_rate_bounded(level):
    params = NetFenceParams()
    limiter = RequestRateLimiter(params)
    duration = 2.0
    arrivals = 4000
    admitted = sum(
        limiter.admit(Packet(src="s", dst="d", size_bytes=92,
                             ptype=PacketType.REQUEST, priority=level),
                      now=i * duration / arrivals)
        for i in range(arrivals)
    )
    max_sustained = params.request_token_rate * duration / (2 ** (level - 1))
    assert admitted <= max_sustained + params.request_token_depth / (2 ** (level - 1)) + 1


@given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=9))
@settings(max_examples=20)
def test_regular_limiter_never_decreases_below_zero(decreases, tenths):
    sim = Simulator()
    params = NetFenceParams().with_overrides(multiplicative_decrease=tenths / 10)
    limiter = RegularRateLimiter(sim, "s", "L", params, release_fn=lambda p: None)
    for _ in range(decreases):
        limiter.adjust()
    assert limiter.rate_bps > 0


# ---------------------------------------------------------------------------
# Fluid model / theorem
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=6))
@settings(max_examples=15, deadline=None)
def test_fluid_model_fair_share_bound_random_on_off(num_good, num_bad, off_intervals):
    capacity = 2e6

    def attack(i, off=off_intervals):
        if off == 0:
            return capacity
        return capacity if (i % (off + 1)) == 0 else 0.0

    good = [FluidSender(name=f"g{i}") for i in range(num_good)]
    bad = [FluidSender(name=f"b{i}", is_legitimate=False, demand_fn=attack)
           for i in range(num_bad)]
    model = AimdFluidModel(capacity, good + bad)
    model.run(300)
    bound = fair_share_lower_bound(capacity, num_good, num_bad, delta=0.1)
    for sender in good:
        assert model.average_rate(sender, last_intervals=150) >= bound * 0.999
