"""Property-style round-trip tests for feedback stamping and validation (§4.4).

Every feedback kind the design stamps — ``nop``, ``L↑``, ``L↓``, and the
Appendix B.1 multi-bottleneck chain — must validate at the access router that
stamped it, and must be rejected when tampered with, presented with the wrong
bottleneck AS, or replayed after the expiration window.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feedback import (
    BottleneckStamper,
    FeedbackAction,
    FeedbackStamper,
    multi_append,
    multi_stamp_nop,
    multi_validate,
)
from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry

LOCAL_AS = "AS-src"
LINK_AS = "AS-core"
OTHER_AS = "AS-other"

hosts = st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8)
links = st.sampled_from(["L1", "L2", "bottleneck", "core-link"])
timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def make_rig(master: bytes = b"prop-roundtrip"):
    secret = AccessRouterSecret("Ra", master=master)
    registry = ASKeyRegistry(master=master)
    stamper = FeedbackStamper(secret, registry, LOCAL_AS)
    bottleneck = BottleneckStamper(registry, LINK_AS)
    return secret, registry, stamper, bottleneck


# ---------------------------------------------------------------------------
# nop and L↑
# ---------------------------------------------------------------------------

@given(hosts, hosts, timestamps)
def test_nop_round_trip_validates(src, dst, ts):
    _, _, stamper, _ = make_rig()
    nop = stamper.stamp_nop(src, dst, ts)
    assert stamper.validate(nop, src, dst, ts, expiration=4.0)


@given(hosts, hosts, links, timestamps)
def test_incr_round_trip_validates(src, dst, link, ts):
    _, _, stamper, _ = make_rig()
    incr = stamper.stamp_incr(src, dst, link, ts)
    assert incr.is_incr
    assert stamper.validate(incr, src, dst, ts, expiration=4.0)


@given(hosts, hosts, links, timestamps)
def test_decr_round_trip_validates_with_link_as(src, dst, link, ts):
    """The Eq. 1 → Eq. 3 chain: nop stamped at the access router, consumed by
    the bottleneck into L↓, then validated back at the access router."""
    _, _, stamper, bottleneck = make_rig()
    nop = stamper.stamp_nop(src, dst, ts)
    decr = bottleneck.stamp_decr(nop, src, dst, LOCAL_AS, link)
    assert decr.is_decr
    assert decr.token_nop is None  # erased to stop downstream tampering
    assert stamper.validate(decr, src, dst, ts, expiration=4.0, link_as=LINK_AS)


@given(hosts, hosts, links, timestamps)
def test_decr_from_incr_round_trip_validates(src, dst, link, ts):
    """L↑ carries a dedicated token_nop; the bottleneck consumes that one."""
    _, _, stamper, bottleneck = make_rig()
    incr = stamper.stamp_incr(src, dst, link, ts)
    decr = bottleneck.stamp_decr(incr, src, dst, LOCAL_AS, link)
    assert stamper.validate(decr, src, dst, ts, expiration=4.0, link_as=LINK_AS)


# ---------------------------------------------------------------------------
# Rejections
# ---------------------------------------------------------------------------

@given(hosts, hosts, links, timestamps, st.integers(min_value=0, max_value=15))
def test_tampered_mac_is_rejected(src, dst, link, ts, flip_byte):
    _, _, stamper, bottleneck = make_rig()
    for feedback in (
        stamper.stamp_nop(src, dst, ts),
        stamper.stamp_incr(src, dst, link, ts),
        bottleneck.stamp_decr(stamper.stamp_nop(src, dst, ts), src, dst, LOCAL_AS, link),
    ):
        index = flip_byte % len(feedback.mac)
        corrupted = bytes(
            b ^ (0xFF if i == index else 0) for i, b in enumerate(feedback.mac)
        )
        tampered = dataclasses.replace(feedback, mac=corrupted)
        assert not stamper.validate(tampered, src, dst, ts, expiration=4.0,
                                    link_as=LINK_AS)


@given(hosts, hosts, links, timestamps)
def test_decr_with_wrong_link_as_is_rejected(src, dst, link, ts):
    """A sender cannot claim the L↓ came from a different bottleneck AS."""
    _, _, stamper, bottleneck = make_rig()
    decr = bottleneck.stamp_decr(stamper.stamp_nop(src, dst, ts), src, dst,
                                 LOCAL_AS, link)
    assert not stamper.validate(decr, src, dst, ts, expiration=4.0, link_as=OTHER_AS)
    assert not stamper.validate(decr, src, dst, ts, expiration=4.0, link_as=None)


@given(hosts, hosts, links, timestamps, st.floats(min_value=4.001, max_value=1e4))
def test_expired_feedback_is_rejected(src, dst, link, ts, age):
    _, _, stamper, bottleneck = make_rig()
    for feedback in (
        stamper.stamp_nop(src, dst, ts),
        stamper.stamp_incr(src, dst, link, ts),
        bottleneck.stamp_decr(stamper.stamp_nop(src, dst, ts), src, dst, LOCAL_AS, link),
    ):
        assert not stamper.validate(feedback, src, dst, ts + age, expiration=4.0,
                                    link_as=LINK_AS)


@given(hosts, hosts, hosts, timestamps)
def test_feedback_bound_to_src_dst_pair(src, dst, other, ts):
    """Feedback stamped for one (src, dst) pair never validates for another."""
    _, _, stamper, _ = make_rig()
    nop = stamper.stamp_nop(src, dst, ts)
    if other != src:
        assert not stamper.validate(nop, other, dst, ts, expiration=4.0)
    if other != dst:
        assert not stamper.validate(nop, src, other, ts, expiration=4.0)


# ---------------------------------------------------------------------------
# Appendix B.1: multi-bottleneck chain (Eqs. 4–5)
# ---------------------------------------------------------------------------

@given(hosts, hosts, timestamps,
       st.lists(st.tuples(links, st.sampled_from([FeedbackAction.INCR,
                                                  FeedbackAction.DECR])),
                min_size=0, max_size=4, unique_by=lambda pair: pair[0]))
@settings(max_examples=50)
def test_multi_feedback_chain_round_trip(src, dst, ts, chain_steps):
    secret, registry, _, _ = make_rig()
    feedback = multi_stamp_nop(secret, src, dst, ts)
    for link, action in chain_steps:
        feedback = multi_append(registry, LINK_AS, LOCAL_AS, feedback, src, dst,
                                link, action)
    assert feedback.chain == tuple((link, action.value) for link, action in chain_steps)
    assert multi_validate(secret, registry, LOCAL_AS, feedback, src, dst, ts,
                          expiration=4.0, link_as_resolver=lambda link: LINK_AS)
    # The summary action is DECR iff any on-path bottleneck stamped DECR.
    if chain_steps:
        expect_decr = any(action is FeedbackAction.DECR for _, action in chain_steps)
        assert feedback.is_decr == expect_decr


@given(hosts, hosts, timestamps, links, links)
def test_multi_feedback_chain_tampering_rejected(src, dst, ts, link_a, link_b):
    secret, registry, _, _ = make_rig()
    feedback = multi_stamp_nop(secret, src, dst, ts)
    feedback = multi_append(registry, LINK_AS, LOCAL_AS, feedback, src, dst,
                            link_a, FeedbackAction.DECR)

    def resolver(link):
        return LINK_AS

    # Dropping or rewriting a chain entry invalidates the folded token.
    truncated = dataclasses.replace(feedback, chain=())
    assert not multi_validate(secret, registry, LOCAL_AS, truncated, src, dst, ts,
                              expiration=4.0, link_as_resolver=resolver)
    if link_b != link_a:
        rewritten = dataclasses.replace(feedback, chain=((link_b, "decr"),))
        assert not multi_validate(secret, registry, LOCAL_AS, rewritten, src, dst,
                                  ts, expiration=4.0, link_as_resolver=resolver)
    upgraded = dataclasses.replace(feedback, chain=((link_a, "incr"),))
    assert not multi_validate(secret, registry, LOCAL_AS, upgraded, src, dst, ts,
                              expiration=4.0, link_as_resolver=resolver)
    # An unresolvable link AS (no IP-to-AS mapping) is a rejection too.
    assert not multi_validate(secret, registry, LOCAL_AS, feedback, src, dst, ts,
                              expiration=4.0, link_as_resolver=lambda link: None)


@given(hosts, hosts, timestamps)
def test_multi_feedback_expired_rejected(src, dst, ts):
    secret, registry, _, _ = make_rig()
    feedback = multi_stamp_nop(secret, src, dst, ts)
    assert not multi_validate(secret, registry, LOCAL_AS, feedback, src, dst,
                              ts + 4.5, expiration=4.0,
                              link_as_resolver=lambda link: LINK_AS)
