"""Property tests: the result store round-trips every experiment's rows.

Every registered experiment returns typed dataclass rows.  Whatever values
those fields take, a row list written to :class:`repro.store.ResultStore`
must come back field-for-field identical (same class, same values, schema
fingerprint intact) — and a record written under a *previous* shape of a
row class must be rejected, mirroring ``SweepCache``'s VERSION-2 staleness
rule.
"""

import dataclasses
import importlib
import typing
import uuid

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.rows import row_schema
from repro.experiments.sweep import EXPERIMENT_MODULES, ScenarioSpec
from repro.store import ResultStore


def _registered_row_classes():
    """Every dataclass named ``*Row`` in a registered experiment module."""
    classes = {}
    for module_name in EXPERIMENT_MODULES:
        module = importlib.import_module(module_name)
        for obj in vars(module).values():
            if (isinstance(obj, type) and dataclasses.is_dataclass(obj)
                    and obj.__name__.endswith("Row")
                    and obj.__module__ == module_name):
                classes[f"{obj.__module__}.{obj.__qualname__}"] = obj
    return [classes[name] for name in sorted(classes)]


ROW_CLASSES = _registered_row_classes()

_SCALAR_STRATEGIES = {
    bool: st.booleans(),
    int: st.integers(min_value=-10**9, max_value=10**9),
    float: st.floats(allow_nan=False, allow_infinity=False, width=64),
    str: st.text(max_size=16),
}


def _instances(row_cls):
    """Strategy producing instances of ``row_cls`` with arbitrary field values."""
    hints = typing.get_type_hints(row_cls)
    field_strategies = {}
    for field in dataclasses.fields(row_cls):
        field_type = hints[field.name]
        if field_type not in _SCALAR_STRATEGIES:  # pragma: no cover
            pytest.fail(f"{row_cls.__qualname__}.{field.name} has unsupported "
                        f"type {field_type!r}; extend _SCALAR_STRATEGIES")
        field_strategies[field.name] = _SCALAR_STRATEGIES[field_type]
    return st.builds(row_cls, **field_strategies)


def test_every_experiment_module_contributes_a_row_class():
    """The sweep registry and this test must not drift apart silently."""
    assert len(ROW_CLASSES) >= 7
    covered = {cls.__module__ for cls in ROW_CLASSES}
    # fig13/fig14 reuse ParkingLotRow; every other module defines its own.
    assert len(covered) >= len(EXPERIMENT_MODULES) - 2


@pytest.mark.parametrize("row_cls", ROW_CLASSES,
                         ids=lambda cls: cls.__qualname__)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_store_round_trips_registered_row_dataclasses(tmp_path, row_cls, data):
    rows = data.draw(st.lists(_instances(row_cls), min_size=1, max_size=3))
    store = ResultStore(str(tmp_path / "roundtrip.sqlite"))
    spec = ScenarioSpec.make("_prop_roundtrip", token=uuid.uuid4().hex)
    store.put(spec, rows)
    fetched = store.get(spec)
    assert fetched is not None
    assert len(fetched) == len(rows)
    for original, restored in zip(rows, fetched):
        assert type(restored) is type(original)
        for field in dataclasses.fields(row_cls):
            assert getattr(restored, field.name) == getattr(original, field.name)
    assert row_schema(fetched) == row_schema(rows)


@pytest.mark.parametrize("row_cls", ROW_CLASSES,
                         ids=lambda cls: cls.__qualname__)
def test_store_rejects_rows_stored_under_a_stale_schema(tmp_path, row_cls):
    """Simulate the row class having *gained a field* since the write by
    rewriting the stored fingerprint to the previous (smaller) shape."""
    import sqlite3

    store = ResultStore(str(tmp_path / "stale.sqlite"))
    hints = typing.get_type_hints(row_cls)
    sample = row_cls(**{
        field.name: {bool: True, int: 1, float: 1.0, str: "x"}[hints[field.name]]
        for field in dataclasses.fields(row_cls)})
    spec = ScenarioSpec.make("_prop_stale", token=row_cls.__qualname__)
    store.put(spec, [sample])
    assert store.get(spec) == [sample]

    # Rewrite the fingerprint as if written before the last field existed.
    (module, qualname, fields), = row_schema([sample])
    stale = repr(((module, qualname, fields[:-1]),))
    with sqlite3.connect(store.path) as conn:
        conn.execute("UPDATE points SET row_schema = ?", (stale,))
    assert store.get(spec) is None
