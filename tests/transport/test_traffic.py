"""Tests for application workloads (file transfers, web-like traffic)."""

import random


from repro.simulator.topology import Topology
from repro.simulator.trace import ThroughputMonitor
from repro.transport.traffic import (
    FileTransferApp,
    LongRunningTcpApp,
    WebTrafficApp,
    web_file_size_sampler,
)


def build_pair(bottleneck_bps=5e6):
    topo = Topology()
    topo.add_host("a", as_name="A")
    topo.add_host("b", as_name="B")
    topo.add_router("R1", as_name="A")
    topo.add_router("R2", as_name="B")
    topo.add_duplex_link("a", "R1", 100e6, 0.001)
    topo.add_duplex_link("R1", "R2", bottleneck_bps, 0.005)
    topo.add_duplex_link("R2", "b", 100e6, 0.001)
    topo.finalize()
    return topo


def test_file_transfer_app_runs_back_to_back_transfers():
    topo = build_pair()
    app = FileTransferApp(topo.clock, topo.host("a"), topo.host("b"), file_bytes=20_000)
    app.start()
    topo.run(until=10.0)
    assert app.log.attempted > 5
    assert app.log.completion_ratio == 1.0
    assert app.log.average_transfer_time < 1.0


def test_file_transfer_app_stop_at():
    topo = build_pair()
    app = FileTransferApp(topo.clock, topo.host("a"), topo.host("b"),
                          file_bytes=20_000, stop_at=2.0)
    app.start()
    topo.run(until=10.0)
    finished_by_stop = app.log.attempted
    assert finished_by_stop > 0
    topo.run(until=20.0)
    assert app.log.attempted == finished_by_stop


def test_file_transfer_log_statistics():
    topo = build_pair()
    app = FileTransferApp(topo.clock, topo.host("a"), topo.host("b"), file_bytes=20_000)
    app.start()
    topo.run(until=5.0)
    log = app.log
    assert log.completed == len(log.completed_durations)
    assert log.total_bytes_completed == log.completed * 20_000


def test_web_traffic_app_varies_file_sizes():
    topo = build_pair()
    app = WebTrafficApp(topo.clock, topo.host("a"), topo.host("b"),
                        rng=random.Random(7))
    app.start()
    topo.run(until=20.0)
    sizes = {result.file_bytes for result in app.log.results}
    assert len(sizes) > 3
    assert app.log.completion_ratio == 1.0


def test_web_file_size_sampler_bounds():
    rng = random.Random(3)
    sizes = [web_file_size_sampler(rng) for _ in range(2000)]
    assert all(1_000 <= size <= 150_000 for size in sizes)
    # Heavy-ish tail: some large objects, many small ones.
    assert sum(1 for s in sizes if s > 50_000) > 10
    assert sum(1 for s in sizes if s < 20_000) > 1000


def test_long_running_app_measures_throughput():
    topo = build_pair(bottleneck_bps=2e6)
    monitor = ThroughputMonitor(topo.clock)
    monitor.start()
    app = LongRunningTcpApp(topo.clock, topo.host("a"), topo.host("b"), monitor=monitor)
    app.start()
    topo.run(until=10.0)
    monitor.stop()
    assert monitor.throughput_bps("a") > 1e6


def test_agents_are_released_after_each_transfer():
    topo = build_pair()
    app = FileTransferApp(topo.clock, topo.host("a"), topo.host("b"), file_bytes=20_000)
    app.start()
    topo.run(until=10.0)
    # Only the currently active flow (if any) should remain registered.
    assert len(topo.host("a").agents) <= 1
    assert len(topo.host("b").agents) <= 1


def test_web_apps_on_different_hosts_sample_different_sizes():
    # Regression: without an explicit rng, every WebTrafficApp used to share
    # a hard-coded Random(0) and all "independent" web users requested the
    # exact same file-size sequence.
    topo = Topology()
    for name in ("a", "c"):
        topo.add_host(name, as_name="A")
    topo.add_host("b", as_name="B")
    topo.add_router("R", as_name="A")
    for name in ("a", "b", "c"):
        topo.add_duplex_link(name, "R", 100e6, 0.001)
    topo.finalize()
    app1 = WebTrafficApp(topo.clock, topo.host("a"), topo.host("b"))
    app2 = WebTrafficApp(topo.clock, topo.host("c"), topo.host("b"))
    assert [app1._next_file_bytes() for _ in range(20)] != \
        [app2._next_file_bytes() for _ in range(20)]


def test_web_app_seed_controls_the_derived_stream():
    topo = build_pair()

    def sizes(seed):
        app = WebTrafficApp(topo.clock, topo.host("a"), topo.host("b"), seed=seed)
        return [app._next_file_bytes() for _ in range(10)]

    assert sizes(1) == sizes(1)
    assert sizes(1) != sizes(2)
