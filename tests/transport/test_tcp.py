"""Tests for the Reno-style TCP implementation."""

import pytest

from repro.simulator.topology import Topology
from repro.simulator.trace import ThroughputMonitor
from repro.transport.tcp import MSS, TcpReceiver, TcpSender, TcpState


def build_path(bottleneck_bps=2e6, delay_s=0.005, loss_queue_bytes=None):
    topo = Topology()
    topo.add_host("a", as_name="A")
    topo.add_host("b", as_name="B")
    topo.add_router("R1", as_name="A")
    topo.add_router("R2", as_name="B")
    topo.add_duplex_link("a", "R1", 100e6, 0.001)
    if loss_queue_bytes is not None:
        from repro.simulator.queues import DropTailQueue
        topo.add_duplex_link("R1", "R2", bottleneck_bps, delay_s,
                             queue_factory=lambda c: DropTailQueue(loss_queue_bytes))
    else:
        topo.add_duplex_link("R1", "R2", bottleneck_bps, delay_s)
    topo.add_duplex_link("R2", "b", 100e6, 0.001)
    topo.finalize()
    return topo


def run_transfer(topo, file_bytes, until=60.0, deadline=200.0):
    results = []
    flow_id = "tcp:a->b:1"
    TcpReceiver(topo.clock, topo.host("b"), flow_id)
    sender = TcpSender(topo.clock, topo.host("a"), "b", file_bytes=file_bytes,
                       flow_id=flow_id, deadline_s=deadline,
                       on_complete=results.append)
    sender.start()
    topo.run(until=until)
    return sender, results


def test_small_transfer_completes():
    topo = build_path()
    sender, results = run_transfer(topo, file_bytes=20_000)
    assert results and results[0].completed
    assert sender.state is TcpState.COMPLETED


def test_transfer_time_reasonable_for_20kb():
    topo = build_path(bottleneck_bps=2e6)
    _, results = run_transfer(topo, file_bytes=20_000)
    # Handshake + ~14 segments at 2 Mbps with slow start: well under a second.
    assert results[0].duration < 1.0


def test_large_transfer_fills_the_link():
    topo = build_path(bottleneck_bps=2e6)
    monitor = ThroughputMonitor(topo.clock)
    flow_id = "tcp:a->b:big"
    TcpReceiver(topo.clock, topo.host("b"), flow_id, monitor=monitor)
    sender = TcpSender(topo.clock, topo.host("a"), "b", file_bytes=10_000_000,
                       flow_id=flow_id, deadline_s=None)
    monitor.start()
    sender.start()
    topo.run(until=20.0)
    monitor.stop()
    assert monitor.throughput_bps("a") > 0.8 * 2e6


def test_transfer_survives_lossy_bottleneck():
    # A tiny bottleneck queue forces drops; TCP must still finish via
    # fast retransmit / RTO.
    topo = build_path(bottleneck_bps=1e6, loss_queue_bytes=3 * 1500)
    sender, results = run_transfer(topo, file_bytes=200_000, until=120.0)
    assert results and results[0].completed
    assert results[0].retransmissions > 0


def test_segment_count_matches_file_size():
    topo = build_path()
    sender, _ = run_transfer(topo, file_bytes=MSS * 3 + 10)
    assert sender.total_segments == 4


def test_receiver_handles_out_of_order_segments():
    topo = build_path()
    flow_id = "tcp:a->b:x"
    receiver = TcpReceiver(topo.clock, topo.host("b"), flow_id)
    from repro.simulator.packet import Packet
    from repro.transport.tcp import TcpHeader

    def deliver(seq):
        packet = Packet(src="a", dst="b", flow_id=flow_id, protocol="tcp")
        packet.set_header("tcp", TcpHeader(kind="data", seq=seq))
        receiver.on_packet(packet)

    deliver(2)
    assert receiver.next_expected == 1
    deliver(1)
    assert receiver.next_expected == 3


def test_syn_retries_exhaustion_aborts():
    # No receiver registered and a black-hole route: the SYN can never be
    # answered, so after MAX_SYN_RETRIES the sender aborts.
    topo = build_path()
    results = []
    sender = TcpSender(topo.clock, topo.host("a"), "nonexistent", file_bytes=1000,
                       flow_id="tcp:a->nowhere:1", deadline_s=None,
                       on_complete=results.append)
    sender.start()
    topo.run(until=3000.0)
    assert results and not results[0].completed
    assert results[0].abort_reason == "syn_retries_exhausted"
    assert results[0].syn_retries == TcpSender.MAX_SYN_RETRIES + 1


def test_deadline_aborts_slow_transfer():
    topo = build_path(bottleneck_bps=50e3)  # 50 Kbps: 1 MB cannot finish in 5 s
    results = []
    flow_id = "tcp:a->b:slow"
    TcpReceiver(topo.clock, topo.host("b"), flow_id)
    sender = TcpSender(topo.clock, topo.host("a"), "b", file_bytes=1_000_000,
                       flow_id=flow_id, deadline_s=5.0, on_complete=results.append)
    sender.start()
    topo.run(until=30.0)
    assert results and results[0].abort_reason == "deadline_exceeded"


def test_cwnd_grows_during_slow_start():
    topo = build_path()
    sender, _ = run_transfer(topo, file_bytes=500_000, until=5.0)
    assert sender.cwnd > 1.0


def test_rtt_estimate_converges_to_path_rtt():
    topo = build_path(bottleneck_bps=10e6, delay_s=0.02)
    sender, _ = run_transfer(topo, file_bytes=300_000, until=10.0)
    # Path RTT ≈ 2*(0.001+0.02+0.001) = 44 ms plus queueing.
    assert sender.srtt is not None
    assert 0.02 < sender.srtt < 0.3


def test_sender_cannot_start_twice():
    topo = build_path()
    flow_id = "tcp:a->b:1"
    TcpReceiver(topo.clock, topo.host("b"), flow_id)
    sender = TcpSender(topo.clock, topo.host("a"), "b", file_bytes=1000, flow_id=flow_id)
    sender.start()
    with pytest.raises(RuntimeError):
        sender.start()


def test_invalid_file_size_rejected():
    topo = build_path()
    with pytest.raises(ValueError):
        TcpSender(topo.clock, topo.host("a"), "b", file_bytes=0, flow_id="f")
