"""Tests for UDP senders, on-off patterns, and sinks."""

import pytest

from repro.simulator.packet import PacketType
from repro.simulator.topology import Topology
from repro.simulator.trace import ThroughputMonitor
from repro.transport.udp import OnOffPattern, UdpSender, UdpSink


def build_pair(capacity_bps=10e6):
    topo = Topology()
    topo.add_host("a", as_name="A")
    topo.add_host("b", as_name="B")
    topo.add_router("R", as_name="A")
    topo.add_duplex_link("a", "R", capacity_bps, 0.001)
    topo.add_duplex_link("R", "b", capacity_bps, 0.001)
    topo.finalize()
    return topo


def test_cbr_sender_achieves_configured_rate():
    topo = build_pair()
    monitor = ThroughputMonitor(topo.clock)
    monitor.start()
    UdpSink(topo.clock, topo.host("b"), monitor=monitor)
    UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6).start()
    topo.run(until=5.0)
    monitor.stop()
    assert monitor.throughput_bps("a") == pytest.approx(1e6, rel=0.05)


def test_sender_stop_halts_traffic():
    topo = build_pair()
    sink = UdpSink(topo.clock, topo.host("b"))
    sender = UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6)
    sender.start()
    topo.clock.schedule(1.0, sender.stop)
    topo.run(until=3.0)
    received_at_1s = sink.packets_received
    assert received_at_1s > 0
    # Allow in-flight packets to drain; no new ones should appear afterwards.
    assert sink.packets_received <= received_at_1s + 2


def test_sender_start_delay():
    topo = build_pair()
    sink = UdpSink(topo.clock, topo.host("b"))
    sender = UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6)
    sender.start(at=2.0)
    topo.run(until=1.9)
    assert sink.packets_received == 0
    topo.run(until=3.0)
    assert sink.packets_received > 0


def test_request_flood_packet_type_and_priority():
    topo = build_pair()
    sink = UdpSink(topo.clock, topo.host("b"))
    UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6, packet_size=92,
              ptype=PacketType.REQUEST, priority=7).start()
    topo.run(until=0.1)
    assert sink.packets_received > 0
    # Without a NetFence shim on the host, type and priority pass through.
    assert all(True for _ in range(1))


def test_invalid_rate_rejected():
    topo = build_pair()
    with pytest.raises(ValueError):
        UdpSender(topo.clock, topo.host("a"), "b", rate_bps=0)


def test_on_off_pattern_phase_logic():
    pattern = OnOffPattern(on_s=1.0, off_s=3.0)
    assert pattern.is_on(0.5)
    assert not pattern.is_on(2.0)
    assert pattern.next_on_time(2.0) == pytest.approx(4.0)
    assert pattern.next_on_time(0.2) == pytest.approx(0.2)


def test_on_off_sender_respects_duty_cycle():
    topo = build_pair()
    monitor = ThroughputMonitor(topo.clock)
    monitor.start()
    UdpSink(topo.clock, topo.host("b"), monitor=monitor)
    pattern = OnOffPattern(on_s=1.0, off_s=1.0)
    UdpSender(topo.clock, topo.host("a"), "b", rate_bps=2e6, pattern=pattern).start()
    topo.run(until=10.0)
    monitor.stop()
    # 50 % duty cycle at 2 Mbps → about 1 Mbps average.
    assert monitor.throughput_bps("a") == pytest.approx(1e6, rel=0.15)


def test_sink_counts_bytes():
    topo = build_pair()
    sink = UdpSink(topo.clock, topo.host("b"))
    UdpSender(topo.clock, topo.host("a"), "b", rate_bps=1e6, packet_size=1000).start()
    topo.run(until=1.0)
    assert sink.bytes_received == sink.packets_received * 1000
