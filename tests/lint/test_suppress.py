"""Suppression mechanics: inline waivers, file pragmas, and the baseline."""

from __future__ import annotations

from repro.lint import Baseline, lint_source
from repro.lint.engine import check_source
from repro.lint.registry import select_rules

BAD_LINE = "import time\nstamp = time.time()\n"
PATH = "repro/core/access.py"


def active_and_suppressed(source: str, path: str = PATH):
    return check_source(source, path, select_rules())


def test_inline_disable_waives_only_that_line():
    source = (
        "import time\n"
        "a = time.time()  # nf: disable=NF002\n"
        "b = time.time()\n"
    )
    active, suppressed = active_and_suppressed(source)
    assert [v.line for v in active if v.code == "NF002"] == [3]
    assert [v.line for v in suppressed] == [2]


def test_inline_disable_is_code_specific():
    source = "import time\na = time.time()  # nf: disable=NF001\n"
    active, suppressed = active_and_suppressed(source)
    assert [v.code for v in active] == ["NF002"]
    assert suppressed == []


def test_inline_disable_accepts_multiple_codes():
    source = (
        "import time, random\n"
        "a = time.time() + random.random()  # nf: disable=NF001, NF002\n"
    )
    active, suppressed = active_and_suppressed(source)
    assert active == []
    assert {v.code for v in suppressed} == {"NF001", "NF002"}


def test_file_pragma_waives_whole_file():
    source = (
        "# nf: disable-file=NF002\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    active, suppressed = active_and_suppressed(source)
    assert active == []
    assert len(suppressed) == 2


def test_file_pragma_outside_header_window_is_ignored():
    source = "\n" * 15 + "# nf: disable-file=NF002\nimport time\na = time.time()\n"
    active, _ = active_and_suppressed(source)
    assert [v.code for v in active] == ["NF002"]


def test_disable_all_wildcard():
    source = "import time\na = time.time()  # nf: disable=all\n"
    active, suppressed = active_and_suppressed(source)
    assert active == []
    assert [v.code for v in suppressed] == ["NF002"]


# -- baseline ------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    violations = lint_source(BAD_LINE, PATH)
    assert violations
    baseline = Baseline.from_violations(violations)
    path = tmp_path / "lint-baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.counts == baseline.counts

    fresh, waived = loaded.partition(violations)
    assert fresh == []
    assert waived == violations


def test_baseline_fingerprints_survive_line_drift():
    moved = "import time\n\n\n\nstamp = time.time()\n"
    baseline = Baseline.from_violations(lint_source(BAD_LINE, PATH))
    fresh, waived = baseline.partition(lint_source(moved, PATH))
    assert fresh == []
    assert len(waived) == 1


def test_baseline_does_not_absorb_extra_copies():
    # One waived finding; a second identical occurrence must still surface.
    doubled = "import time\nstamp = time.time()\nstamp = time.time()\n"
    baseline = Baseline.from_violations(lint_source(BAD_LINE, PATH))
    fresh, waived = baseline.partition(lint_source(doubled, PATH))
    assert len(waived) == 1
    assert len(fresh) == 1


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "fingerprints": {}}')
    try:
        Baseline.load(path)
    except ValueError as exc:
        assert "version" in str(exc)
    else:  # pragma: no cover - defensive
        raise AssertionError("expected ValueError for unknown version")


def test_fingerprint_depends_on_code_path_and_content():
    (violation,) = [
        v for v in lint_source(BAD_LINE, PATH) if v.code == "NF002"
    ]
    (other_path,) = [
        v
        for v in lint_source(BAD_LINE, "repro/core/bottleneck.py")
        if v.code == "NF002"
    ]
    assert violation.fingerprint != other_path.fingerprint
    assert violation.fingerprint == violation.fingerprint  # stable
