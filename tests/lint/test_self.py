"""Self-lint: the shipped source tree must satisfy its own invariants."""

from __future__ import annotations

from pathlib import Path

from repro.lint import cli_main, lint_paths
from repro.lint.baseline import Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_source_tree_is_lint_clean():
    result = lint_paths([str(SRC)], baseline=Baseline.load(BASELINE))
    formatted = "\n".join(v.format() for v in result.violations)
    assert result.ok, f"self-lint found violations:\n{formatted}"
    assert result.files_checked > 50
    assert result.parse_errors == []


def test_strict_self_lint_exits_zero(capsys):
    assert cli_main([str(SRC), "--strict", "--baseline", str(BASELINE)]) == 0
    assert "clean" in capsys.readouterr().out


def test_baseline_covers_only_known_emitters():
    # The committed baseline waives exactly the deliberate sites: the
    # human-mode emitters (serve/loadgen/dashboard) and sweep's module
    # logger that bridge_stdlib forwards; everything else must lint clean
    # without it.
    result = lint_paths([str(SRC)], baseline=Baseline.load(BASELINE))
    waived = {(v.code, v.path.rsplit("/", 1)[-1]) for v in result.baselined}
    assert waived == {
        ("NF015", "serve.py"),
        ("NF015", "loadgen.py"),
        ("NF015", "dashboard.py"),
        ("NF016", "sweep.py"),
    }


def test_seeded_violation_fails_strict_and_names_the_rule(tmp_path, capsys):
    # Plant a determinism violation in a scoped copy of the tree layout and
    # confirm the gate catches it by code.
    pkg = tmp_path / "repro" / "simulator"
    pkg.mkdir(parents=True)
    seeded = pkg / "seeded.py"
    seeded.write_text("import random\njitter = random.random()\n")
    assert cli_main([str(tmp_path), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "NF001" in out
    assert "seeded.py" in out


def test_suppressions_in_tree_are_counted_not_hidden():
    # fig7 intentionally reads the wall clock (it *measures* per-op cost);
    # those waivers must surface in the result rather than vanish.
    result = lint_paths([str(SRC)])
    waived_codes = {v.code for v in result.suppressed}
    assert "NF002" in waived_codes
    fig7 = [v for v in result.suppressed if v.path.endswith("fig7_overhead.py")]
    assert len(fig7) == 2
