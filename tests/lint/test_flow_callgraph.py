"""Call-graph construction: name resolution, dispatch, callbacks, DOT."""

from __future__ import annotations

from repro.lint.context import FileContext
from repro.lint.flow import build_callgraph, module_qname, to_dot


def _graph(sources):
    contexts = [FileContext(src, path) for path, src in sources.items()]
    return build_callgraph(contexts)


def _edges(graph, qname):
    return {target for _site, target in graph.successors(qname)}


def test_module_qname_anchors_at_repro_and_collapses_init():
    assert module_qname("repro/core/access.py") == "repro.core.access"
    assert module_qname("repro/obs/__init__.py") == "repro.obs"
    assert module_qname("tests/fixtures/x.py") == "tests.fixtures.x"


def test_from_import_call_resolves_across_modules():
    graph = _graph({
        "tmp/repro/pkg/util.py": "def helper(x):\n    return x\n",
        "tmp/repro/pkg/caller.py": (
            "from repro.pkg.util import helper\n"
            "def run():\n"
            "    return helper(1)\n"
        ),
    })
    assert "repro.pkg.util.helper" in _edges(graph, "repro.pkg.caller.run")


def test_annotation_types_the_receiver_for_dispatch():
    graph = _graph({
        "tmp/repro/pkg/mod.py": (
            "class Limiter:\n"
            "    def poke(self):\n"
            "        return 1\n"
            "def run(lim: Limiter):\n"
            "    lim.poke()\n"
        ),
    })
    assert "repro.pkg.mod.Limiter.poke" in _edges(graph, "repro.pkg.mod.run")


def test_constructor_assignment_types_self_attributes():
    graph = _graph({
        "tmp/repro/pkg/mod.py": (
            "class Queue:\n"
            "    def push(self, item):\n"
            "        pass\n"
            "class Router:\n"
            "    def __init__(self):\n"
            "        self.q = Queue()\n"
            "    def forward(self, pkt):\n"
            "        self.q.push(pkt)\n"
        ),
    })
    assert "repro.pkg.mod.Queue.push" in _edges(graph,
                                                "repro.pkg.mod.Router.forward")


def test_dispatch_includes_subclass_overrides():
    graph = _graph({
        "tmp/repro/pkg/mod.py": (
            "class Base:\n"
            "    def handle(self):\n"
            "        pass\n"
            "class Sub(Base):\n"
            "    def handle(self):\n"
            "        pass\n"
            "def run(obj: Base):\n"
            "    obj.handle()\n"
        ),
    })
    edges = _edges(graph, "repro.pkg.mod.run")
    assert "repro.pkg.mod.Base.handle" in edges
    assert "repro.pkg.mod.Sub.handle" in edges


def test_callback_argument_and_nested_def_edges():
    graph = _graph({
        "tmp/repro/pkg/mod.py": (
            "class Policer:\n"
            "    def _fire(self):\n"
            "        pass\n"
            "    def arm(self, clock):\n"
            "        clock.schedule(0.1, self._fire)\n"
            "    def wrap(self):\n"
            "        def inner():\n"
            "            pass\n"
            "        return inner\n"
        ),
    })
    arm = [s for s in graph.functions["repro.pkg.mod.Policer.arm"].calls
           if s.kind == "callback"]
    assert any("Policer._fire" in t for site in arm for t in site.targets)
    nested = [s for s in graph.functions["repro.pkg.mod.Policer.wrap"].calls
              if s.kind == "nested"]
    assert any("wrap.inner" in t for site in nested for t in site.targets)


def test_builtin_method_names_do_not_duck_dispatch():
    # An untyped `.get()` must not wire to every function named `get`.
    graph = _graph({
        "tmp/repro/pkg/a.py": "def get(url):\n    return url\n",
        "tmp/repro/pkg/b.py": (
            "def run(cache):\n"
            "    return cache.get('x')\n"
        ),
    })
    assert "repro.pkg.a.get" not in _edges(graph, "repro.pkg.b.run")


def test_unindexed_import_keeps_opaque_dotted_target():
    # The sink/source qname matching relies on opaque targets surviving
    # even when the imported module is not among the analyzed files.
    graph = _graph({
        "tmp/repro/pkg/mod.py": (
            "from repro.obs.log import JsonLinesLogger\n"
            "def run(log: JsonLinesLogger):\n"
            "    log.emit('x')\n"
        ),
    })
    (site,) = [s for s in graph.functions["repro.pkg.mod.run"].calls
               if s.callee_name == "emit"]
    assert "repro.obs.log.JsonLinesLogger.emit" in site.targets


def test_to_dot_renders_nodes_and_edges():
    graph = _graph({
        "tmp/repro/pkg/mod.py": (
            "def helper():\n"
            "    pass\n"
            "def run():\n"
            "    helper()\n"
        ),
    })
    dot = to_dot(graph)
    assert dot.startswith("digraph")
    assert '"repro.pkg.mod.run" -> "repro.pkg.mod.helper"' in dot
