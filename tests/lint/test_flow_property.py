"""Property tests: the taint engine on generated synthetic call chains.

Each example builds a module with a source (a ``master_secret`` parameter),
a randomly long helper chain, a sink (structured logging or the flight
recorder), and optionally a ``compute_mac`` sanitizer at a random position.
The engine must flag the chain exactly when no sanitizer lies on the path,
and the witness must name every hop.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lint.context import FileContext
from repro.lint.flow import build_callgraph
from repro.lint.flow.rules import NoKeyMaterialEgress

_SINKS = {
    "log": ("from repro.obs.log import JsonLinesLogger",
            "out: JsonLinesLogger",
            "out.emit('x', {value})"),
    "flight": ("from repro.obs.flight import FlightRecorder",
               "out: FlightRecorder",
               "out.record_log({{'v': {value}}})"),
}


@st.composite
def chains(draw):
    length = draw(st.integers(min_value=1, max_value=4))
    sanitize_at = draw(st.one_of(st.none(),
                                 st.integers(min_value=0,
                                             max_value=length - 1)))
    sink = draw(st.sampled_from(sorted(_SINKS)))
    return length, sanitize_at, sink


def build_module(length, sanitize_at, sink):
    sink_import, sink_param, sink_call = _SINKS[sink]
    lines = [sink_import, "from repro.crypto.mac import compute_mac", ""]
    for i in range(length):
        param = "master_secret" if i == 0 else "value"
        lines.append(f"def f{i}({sink_param}, {param}: bytes) -> None:")
        current = param
        if sanitize_at == i:
            lines.append(f"    laundered = compute_mac(b'k', {current})")
            current = "laundered"
        if i == length - 1:
            lines.append("    " + sink_call.format(value=current))
        else:
            lines.append(f"    f{i + 1}(out, {current})")
        lines.append("")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(chains())
def test_engine_flags_iff_no_sanitizer_on_path(chain):
    length, sanitize_at, sink = chain
    source = build_module(length, sanitize_at, sink)
    ctx = FileContext(source, "tmp/repro/runtime/generated.py")
    violations = NoKeyMaterialEgress.analyze(build_callgraph([ctx]), [ctx])
    if sanitize_at is None:
        assert len(violations) == 1, source
        (violation,) = violations
        # Witness: f0 .. f{n-1} then the sink callable.
        assert len(violation.witness) == length + 1, source
        assert violation.witness[0].endswith(".f0")
        assert violation.witness[-2].endswith(f".f{length - 1}")
    else:
        assert violations == [], source
