"""Flow rules NF101–NF103: seeded violations, witnesses, machinery reuse."""

from __future__ import annotations

from pathlib import Path

from repro.lint.context import FileContext
from repro.lint.engine import lint_paths
from repro.lint.flow import build_callgraph
from repro.lint.flow.rules import (
    ConstantTimeMacCompareFlow,
    NoKeyMaterialEgress,
    NoUnverifiedRateIncrease,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src" / "repro")
FLOW_CODES = ["NF101", "NF102", "NF103"]

# The logical path anchors at the last `repro/` segment, so these seeded
# modules scope exactly like real source files.
SEED_PATH = "tmp/repro/runtime/seeded.py"

NF101_BAD = """\
from repro.runtime.codec import decode_frame

class BadLimiter:
    def bump(self, frame) -> None:
        self.rate_bps += 1000.0

class Handler:
    def __init__(self) -> None:
        self.limiter = BadLimiter()

    def on_frame(self, data: bytes) -> None:
        frame = decode_frame(data)
        self.limiter.bump(frame)
"""

NF101_OK = NF101_BAD.replace(
    "        frame = decode_frame(data)",
    "        frame = decode_frame(data)\n"
    "        if not self.stamper.validate(frame):\n"
    "            return",
)

NF102_BAD = """\
from repro.obs.log import JsonLinesLogger

def leak(log: JsonLinesLogger, master_secret: bytes) -> None:
    log.emit("boot", secret=master_secret.hex())
"""

NF102_OK = """\
from repro.obs.log import JsonLinesLogger
from repro.crypto.mac import compute_mac

def stamp(log: JsonLinesLogger, master_secret: bytes) -> None:
    log.emit("boot", tag=compute_mac(master_secret, b"x").hex())
"""

NF102_CHAIN = """\
from repro.obs.log import JsonLinesLogger

def entry(log: JsonLinesLogger, master_secret: bytes) -> None:
    relay(log, master_secret)

def relay(log: JsonLinesLogger, value: bytes) -> None:
    sink(log, value)

def sink(log: JsonLinesLogger, value: bytes) -> None:
    log.emit("x", value)
"""

NF103_BAD = """\
def check(feedback, expected: bytes) -> bool:
    return feedback.mac == expected
"""

NF103_OK = """\
from repro.crypto.mac import mac_equal

def check(feedback, expected: bytes) -> bool:
    return mac_equal(feedback.mac, expected)
"""


def _analyze(rule, source, path=SEED_PATH):
    ctx = FileContext(source, path)
    return rule.analyze(build_callgraph([ctx]), [ctx])


def _flow_lint(tmp_path, source, **kwargs):
    pkg = tmp_path / "repro" / "runtime"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "seeded.py").write_text(source)
    return lint_paths([str(pkg)], select=FLOW_CODES, flow=True, **kwargs)


# -- NF101 ------------------------------------------------------------------

def test_nf101_seeded_skip_verifier_is_one_finding_with_witness():
    (violation,) = _analyze(NoUnverifiedRateIncrease, NF101_BAD)
    assert violation.code == "NF101"
    assert violation.line == 12  # the decode_frame call
    assert violation.witness == (
        "repro.runtime.seeded.Handler.on_frame",
        "repro.runtime.seeded.BadLimiter.bump",
        "BadLimiter.bump:5",
    )
    assert "rate_bps +=" in violation.message


def test_nf101_verifier_on_path_is_clean():
    assert _analyze(NoUnverifiedRateIncrease, NF101_OK) == []


# -- NF102 ------------------------------------------------------------------

def test_nf102_seeded_logged_key_is_one_finding_with_witness():
    (violation,) = _analyze(NoKeyMaterialEgress, NF102_BAD)
    assert violation.code == "NF102"
    assert "master_secret" in violation.message
    assert violation.witness == (
        "repro.runtime.seeded.leak",
        "repro.obs.log.JsonLinesLogger.emit",
    )


def test_nf102_compute_mac_launders():
    assert _analyze(NoKeyMaterialEgress, NF102_OK) == []


def test_nf102_witness_crosses_function_boundaries():
    (violation,) = _analyze(NoKeyMaterialEgress, NF102_CHAIN)
    assert violation.witness == (
        "repro.runtime.seeded.entry",
        "repro.runtime.seeded.relay",
        "repro.runtime.seeded.sink",
        "repro.obs.log.JsonLinesLogger.emit",
    )


# -- NF103 ------------------------------------------------------------------

def test_nf103_seeded_mac_eq_compare_is_one_finding_with_witness():
    (violation,) = _analyze(ConstantTimeMacCompareFlow, NF103_BAD)
    assert violation.code == "NF103"
    assert violation.line == 2
    assert violation.witness == ("repro.runtime.seeded.check", "==")


def test_nf103_mac_equal_is_clean():
    assert _analyze(ConstantTimeMacCompareFlow, NF103_OK) == []


# -- whole-tree theorem + machinery reuse -----------------------------------

def test_source_tree_satisfies_all_flow_rules():
    result = lint_paths([REPO_SRC], select=FLOW_CODES, flow=True)
    assert result.violations == []
    assert result.parse_errors == []
    assert result.flow_graph is not None
    assert len(result.flow_graph.functions) > 500


def test_flow_graph_only_built_when_requested():
    result = lint_paths([REPO_SRC + "/crypto"], select=FLOW_CODES)
    assert result.flow_graph is None


def test_inline_suppression_applies_to_flow_findings(tmp_path):
    suppressed = NF103_BAD.replace(
        "feedback.mac == expected",
        "feedback.mac == expected  # nf: disable=NF103 -- fixture")
    result = _flow_lint(tmp_path, suppressed)
    assert result.violations == []
    assert [v.code for v in result.suppressed] == ["NF103"]


def test_baseline_absorbs_flow_findings(tmp_path):
    from repro.lint.baseline import Baseline

    first = _flow_lint(tmp_path, NF103_BAD)
    assert [v.code for v in first.violations] == ["NF103"]
    baseline = Baseline.from_violations(first.violations)
    second = _flow_lint(tmp_path, NF103_BAD, baseline=baseline)
    assert second.violations == []
    assert [v.code for v in second.baselined] == ["NF103"]


def test_flow_violation_json_carries_witness(tmp_path):
    (violation,) = _flow_lint(tmp_path, NF102_BAD).violations
    record = violation.to_dict()
    assert record["witness"][0] == "repro.runtime.seeded.leak"
    assert record["fingerprint"]
