"""Run the external static-analysis gates when the tools are installed.

CI installs mypy and ruff; the test container may not have them.  These
tests exercise the *committed configs* (mypy.ini / ruff.toml) so a config
typo fails here rather than only in CI.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The strictly-typed packages (mirrors the mypy.ini strict sections and
#: the CI invocation).
MYPY_TARGETS = ("src/repro/runtime", "src/repro/crypto", "src/repro/lint")


def _run(cmd: list) -> subprocess.CompletedProcess:
    return subprocess.run(
        cmd, cwd=REPO_ROOT, capture_output=True, text=True, timeout=600
    )


def _have(module: str) -> bool:
    probe = subprocess.run(
        [sys.executable, "-m", module, "--version"],
        capture_output=True,
        cwd=REPO_ROOT,
    )
    return probe.returncode == 0


def test_configs_are_committed():
    assert (REPO_ROOT / "mypy.ini").is_file()
    assert (REPO_ROOT / "ruff.toml").is_file()


def test_mypy_strict_packages():
    if not _have("mypy"):
        pytest.skip("mypy not installed in this environment (CI installs it)")
    proc = _run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini", *MYPY_TARGETS]
    )
    assert proc.returncode == 0, f"mypy failed:\n{proc.stdout}\n{proc.stderr}"


def test_ruff_check():
    if not (_have("ruff") or shutil.which("ruff")):
        pytest.skip("ruff not installed in this environment (CI installs it)")
    runner = [sys.executable, "-m", "ruff"] if _have("ruff") else [str(shutil.which("ruff"))]
    proc = _run([*runner, "check", "src", "tests", "benchmarks", "examples"])
    assert proc.returncode == 0, f"ruff failed:\n{proc.stdout}\n{proc.stderr}"
