"""Per-rule fixture tests: one failing and one passing snippet per code.

Each fixture is linted with a synthetic *logical path* (``repro/...``) so
the rule's scope patterns fire exactly as they do on the real tree.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import all_rules, lint_source


def codes(source: str, path: str) -> list:
    return [v.code for v in lint_source(textwrap.dedent(source), path)]


def test_registry_has_all_documented_rules():
    registered = [rule.code for rule in all_rules()]
    assert registered == sorted(registered)
    assert len(registered) >= 10
    for rule in all_rules():
        assert rule.name and rule.rationale
        # Flow rules are whole-program: no per-file scope by design.
        assert rule.paths or getattr(rule, "is_flow_rule", False)


# -- NF001: module-level RNG --------------------------------------------------

def test_nf001_flags_module_level_random_call():
    assert "NF001" in codes(
        """
        import random
        jitter = random.random()
        """,
        "repro/core/quota.py",
    )


def test_nf001_flags_importing_module_rng_functions():
    assert "NF001" in codes(
        "from random import randint, shuffle\n", "repro/simulator/queues.py"
    )


def test_nf001_passes_seeded_instance_rng():
    assert "NF001" not in codes(
        """
        from random import Random
        from repro.seeding import derive_seed
        rng = Random(derive_seed(1, "queue"))
        jitter = rng.random()
        """,
        "repro/simulator/queues.py",
    )


# -- NF002: wall clock outside runtime ---------------------------------------

def test_nf002_flags_wall_clock_in_simulation_layer():
    source = """
    import time
    def stamp():
        return time.time()
    """
    assert "NF002" in codes(source, "repro/core/access.py")


def test_nf002_allows_wall_clock_in_runtime_layer():
    source = """
    import time
    def stamp():
        return time.monotonic()
    """
    assert "NF002" not in codes(source, "repro/runtime/clock.py")


def test_nf002_passes_injected_clock_reads():
    assert "NF002" not in codes(
        """
        def stamp(clock):
            return clock.now
        """,
        "repro/core/access.py",
    )


# -- NF003: .sim in seam layers ----------------------------------------------

def test_nf003_flags_sim_attribute_in_core():
    assert "NF003" in codes(
        "def f(router):\n    return router.sim.now\n", "repro/core/bottleneck.py"
    )


def test_nf003_allows_sim_attribute_in_simulator_layer():
    assert "NF003" not in codes(
        "def f(topo):\n    return topo.sim.now\n", "repro/simulator/topology.py"
    )


def test_nf003_passes_injected_clock():
    assert "NF003" not in codes(
        "def f(router):\n    return router.clock.now\n", "repro/core/bottleneck.py"
    )


# -- NF004: hand-rolled quantize ---------------------------------------------

def test_nf004_flags_hand_rolled_microsecond_conversion():
    found = codes("us = int(ts * 1e6)\n", "repro/runtime/codec.py")
    assert found.count("NF004") == 1  # int() + BinOp must not double-report


def test_nf004_flags_bare_division_unquantize():
    assert "NF004" in codes("seconds = us / 1e6\n", "repro/runtime/codec.py")


def test_nf004_passes_canonical_helpers_and_mac_module():
    assert "NF004" not in codes(
        """
        from repro.crypto.mac import quantize_ts
        us = quantize_ts(ts)
        """,
        "repro/runtime/codec.py",
    )
    # mac.py *is* the canonical implementation; the rule must not flag it.
    assert "NF004" not in codes("us = int(ts * 1e6)\n", "repro/crypto/mac.py")


# -- NF005: hot-path dataclass slots -----------------------------------------

def test_nf005_flags_unslotted_hot_path_dataclass():
    source = """
    from dataclasses import dataclass

    @dataclass
    class Header:
        priority: int = 0
    """
    assert "NF005" in codes(source, "repro/simulator/packet.py")


def test_nf005_passes_slotted_dataclass_and_cold_modules():
    slotted = """
    from dataclasses import dataclass

    @dataclass(slots=True)
    class Header:
        priority: int = 0
    """
    assert "NF005" not in codes(slotted, "repro/simulator/packet.py")
    unslotted = slotted.replace("(slots=True)", "")
    assert "NF005" not in codes(unslotted, "repro/experiments/sweep.py")


# -- NF006: hot-path copies ---------------------------------------------------

def test_nf006_flags_dataclasses_replace_on_packet_path():
    source = """
    import dataclasses
    def bump(header):
        return dataclasses.replace(header, priority=1)
    """
    assert "NF006" in codes(source, "repro/core/header.py")


def test_nf006_flags_bare_imported_deepcopy():
    source = """
    from copy import deepcopy
    def clone(packet):
        return deepcopy(packet)
    """
    assert "NF006" in codes(source, "repro/simulator/packet.py")


def test_nf006_allows_replace_in_setup_modules():
    source = """
    import dataclasses
    def with_overrides(params, **kw):
        return dataclasses.replace(params, **kw)
    """
    assert "NF006" not in codes(source, "repro/core/params.py")


# -- NF007: schedule_fast handle ---------------------------------------------

def test_nf007_flags_storing_schedule_fast_result():
    assert "NF007" in codes(
        "handle = sim.schedule_fast(0.1, poke)\n", "repro/simulator/link.py"
    )


def test_nf007_flags_returning_schedule_fast_result():
    source = """
    def arm(sim, poke):
        return sim.schedule_fast(0.1, poke)
    """
    assert "NF007" in codes(source, "repro/simulator/link.py")


def test_nf007_passes_fire_and_forget_and_real_schedule():
    source = """
    def arm(sim, poke):
        sim.schedule_fast(0.1, poke)
        handle = sim.schedule(0.1, poke)
        return handle
    """
    assert "NF007" not in codes(source, "repro/simulator/link.py")


# -- NF008: reset parity ------------------------------------------------------

def test_nf008_flags_reset_missing_an_init_attribute():
    source = """
    class Meter:
        def __init__(self):
            self.count = 0
            self.tap = None

        def reset(self):
            self.count = 0
    """
    found = lint_source(textwrap.dedent(source), "repro/simulator/meter.py")
    nf008 = [v for v in found if v.code == "NF008"]
    assert len(nf008) == 1
    assert "tap" in nf008[0].message


def test_nf008_passes_full_reset_inplace_and_helper_restores():
    source = """
    class Meter:
        def __init__(self):
            self.count = 0
            self.flows = {}
            self.limit = 10

        def _rearm(self):
            self.limit = 10

        def reset(self):
            self.count = 0
            self.flows.clear()
            self._rearm()
    """
    assert "NF008" not in codes(source, "repro/simulator/meter.py")


def test_nf008_passes_reset_that_delegates_to_init():
    source = """
    class Meter:
        def __init__(self):
            self.count = 0
            self.tap = None

        def reset(self):
            self.__init__()
    """
    assert "NF008" not in codes(source, "repro/simulator/meter.py")


# -- NF009: blocking calls in async -------------------------------------------

def test_nf009_flags_time_sleep_inside_async_def():
    source = """
    import time
    async def drain():
        time.sleep(0.5)
    """
    assert "NF009" in codes(source, "repro/runtime/serve.py")


def test_nf009_flags_imported_alias():
    source = """
    from time import sleep
    async def drain():
        sleep(0.5)
    """
    assert "NF009" in codes(source, "repro/runtime/serve.py")


def test_nf009_passes_asyncio_sleep_and_sync_contexts():
    okay = """
    import asyncio
    async def drain():
        await asyncio.sleep(0.5)
    """
    assert "NF009" not in codes(okay, "repro/runtime/serve.py")
    sync = """
    import time
    def blocking_is_fine_outside_async():
        time.sleep(0.5)
    """
    assert "NF009" not in codes(sync, "repro/runtime/serve.py")


# -- NF010: silent excepts -----------------------------------------------------

def test_nf010_flags_bare_except():
    source = """
    try:
        work()
    except:
        pass
    """
    assert "NF010" in codes(source, "repro/experiments/sweep.py")


def test_nf010_flags_broad_silent_except():
    source = """
    try:
        work()
    except Exception:
        pass
    """
    assert "NF010" in codes(source, "repro/experiments/sweep.py")


def test_nf010_passes_specific_or_recorded_exceptions():
    source = """
    try:
        work()
    except ValueError:
        pass
    try:
        work()
    except Exception as exc:
        errors.append(exc)
    """
    assert "NF010" not in codes(source, "repro/experiments/sweep.py")


# -- NF011: unseeded RNG -------------------------------------------------------

def test_nf011_flags_unseeded_random_construction():
    assert "NF011" in codes(
        "import random\nrng = random.Random()\n", "repro/simulator/queues.py"
    )
    assert "NF011" in codes(
        "from random import Random\nrng = Random()\n", "repro/simulator/queues.py"
    )


def test_nf011_passes_seeded_construction():
    assert "NF011" not in codes(
        "import random\nrng = random.Random(42)\n", "repro/simulator/queues.py"
    )


# -- NF012: unsafe deserialization --------------------------------------------

def test_nf012_flags_pickle_and_eval_at_wire_boundary():
    source = """
    import pickle
    def decode(data):
        return pickle.loads(data)
    """
    assert "NF012" in codes(source, "repro/runtime/codec.py")
    assert "NF012" in codes(
        "def decode(data):\n    return eval(data)\n", "repro/runtime/codec.py"
    )


def test_nf012_allows_pickle_outside_wire_layers():
    # The sweep cache pickles *its own* results; only wire/crypto layers
    # face attacker bytes.
    source = """
    import pickle
    def load(path):
        with open(path, "rb") as fh:
            return pickle.load(fh)
    """
    assert "NF012" not in codes(source, "repro/experiments/sweep.py")


# -- NF013: constant-time MAC compare ------------------------------------------

def test_nf013_flags_equality_on_mac_material():
    assert "NF013" in codes(
        "def verify(mac, expected_mac):\n    return mac == expected_mac\n",
        "repro/crypto/mac2.py",
    )


def test_nf013_allows_presence_checks_and_mac_equal():
    source = """
    from repro.crypto.mac import mac_equal
    def verify(mac, expected_mac):
        if mac == b"":
            return False
        return mac_equal(mac, expected_mac)
    """
    assert "NF013" not in codes(source, "repro/crypto/mac2.py")


def test_nf013_out_of_scope_outside_security_layers():
    assert "NF013" not in codes(
        "def f(mac, other_mac):\n    return mac == other_mac\n",
        "repro/analysis/metrics.py",
    )


# -- NF014: assert guards ------------------------------------------------------

def test_nf014_flags_assert_in_runtime():
    assert "NF014" in codes(
        "def check(x):\n    assert x is not None\n", "repro/runtime/serve.py"
    )


def test_nf014_passes_explicit_raise_and_non_security_layers():
    assert "NF014" not in codes(
        """
        def check(x):
            if x is None:
                raise RuntimeError("missing")
        """,
        "repro/runtime/serve.py",
    )
    assert "NF014" not in codes(
        "def check(x):\n    assert x\n", "repro/simulator/engine.py"
    )


# -- NF015: print outside CLI entry points ------------------------------------

def test_nf015_flags_print_in_library_code():
    assert "NF015" in codes(
        """
        def deliver(packet):
            print("delivered", packet)
        """,
        "repro/core/bottleneck.py",
    )
    assert "NF015" in codes(
        'print("module import side effect")\n', "repro/simulator/queues.py"
    )


def test_nf015_flags_print_in_nested_helper_of_cli():
    # A helper *defined inside* cli_main is still CLI surface; one defined
    # beside it is not.
    assert "NF015" in codes(
        """
        def _format(rows):
            print(rows)

        def cli_main(argv=None):
            _format([])
            return 0
        """,
        "repro/experiments/runner.py",
    )


def test_nf015_passes_cli_entry_points():
    assert "NF015" not in codes(
        """
        def main(argv=None):
            print("report")

        def cli_main(argv=None):
            def emit(line):
                print(line)
            emit("ok")
            return 0

        def _cmd_status(args):
            print("queue empty")
        """,
        "repro/experiments/distrib.py",
    )


def test_nf015_out_of_scope_outside_repro():
    assert "NF015" not in codes(
        'print("scratch")\n', "scripts/scratch.py"
    )


# -- NF016: stdlib logging outside repro.obs.log -------------------------------

def test_nf016_flags_getlogger_and_root_logger_in_library_code():
    assert "NF016" in codes(
        "import logging\nlogger = logging.getLogger(__name__)\n",
        "repro/core/bottleneck.py",
    )
    assert "NF016" in codes(
        """
        import logging

        def deliver(packet):
            logging.warning("dropped %s", packet)
        """,
        "repro/runtime/policer.py",
    )
    assert "NF016" in codes(
        "import logging\nlogging.basicConfig(level=10)\n",
        "repro/experiments/sweep.py",
    )


def test_nf016_passes_obs_log_and_cli_entry_points():
    # repro.obs.log is the sanctioned bridge between stdlib logging and the
    # structured stream; CLI entry points may configure logging for a run.
    assert "NF016" not in codes(
        "import logging\nhandler_home = logging.getLogger('repro')\n",
        "repro/obs/log.py",
    )
    assert "NF016" not in codes(
        """
        import logging

        def cli_main(argv=None):
            logging.basicConfig(level=logging.INFO)
            return 0

        def _cmd_worker(args):
            logging.getLogger("worker").setLevel(logging.DEBUG)
        """,
        "repro/experiments/distrib.py",
    )


def test_nf016_out_of_scope_outside_repro():
    assert "NF016" not in codes(
        "import logging\nlogging.info('scratch')\n", "scripts/scratch.py"
    )


# -- select/ignore plumbing ----------------------------------------------------

def test_select_and_ignore_filter_rules():
    source = (
        "import random\n"
        "jitter = random.random()\n"
        "handle = sim.schedule_fast(jitter, poke)\n"
    )
    path = "repro/simulator/link.py"
    assert {"NF001", "NF007"} <= set(codes(source, path))
    only = lint_source(source, path, select=["NF007"])
    assert {v.code for v in only} == {"NF007"}
    without = lint_source(source, path, ignore=["NF007"])
    assert "NF007" not in {v.code for v in without}


def test_unknown_codes_raise():
    with pytest.raises(KeyError):
        lint_source("x = 1\n", "repro/core/x.py", select=["NF999"])
