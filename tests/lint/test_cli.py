"""``runner lint`` CLI behavior: exit codes, JSON shape, dispatch."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main as runner_main
from repro.lint import cli_main

CLEAN = "def f(clock):\n    return clock.now\n"
BAD = "import time\nstamp = time.time()\n"


@pytest.fixture
def bad_file(tmp_path):
    # The logical path anchors at the last `repro/` segment, so a fixture
    # under tmp_path scopes exactly like a real source file.
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    path = pkg / "access.py"
    path.write_text(BAD)
    return path


@pytest.fixture
def clean_file(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / "clean.py"
    path.write_text(CLEAN)
    return path


def test_clean_file_exits_zero(clean_file, capsys):
    assert cli_main([str(clean_file), "--strict"]) == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_only_under_strict(bad_file, capsys):
    assert cli_main([str(bad_file)]) == 0
    assert cli_main([str(bad_file), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "NF002" in out


def test_json_report_shape(bad_file, capsys):
    assert cli_main([str(bad_file), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["counts_by_code"].get("NF002") == 1
    (violation,) = payload["violations"]
    assert violation["code"] == "NF002"
    assert violation["line"] == 2
    assert violation["fingerprint"]


def test_select_and_ignore_flags(bad_file):
    assert cli_main([str(bad_file), "--strict", "--select", "NF001"]) == 0
    assert cli_main([str(bad_file), "--strict", "--ignore", "NF002"]) == 0
    assert cli_main([str(bad_file), "--strict", "--select", "NF002"]) == 1


def test_unknown_rule_code_is_usage_error(bad_file, capsys):
    assert cli_main([str(bad_file), "--select", "NF999"]) == 2
    assert "NF999" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert cli_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_syntax_error_exits_two(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert cli_main([str(broken)]) == 2
    assert "NF000" in capsys.readouterr().out


def test_list_rules_catalog(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("NF001", "NF008", "NF014"):
        assert code in out


def test_write_baseline_then_strict_passes(bad_file, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    assert cli_main(
        [str(bad_file), "--baseline", str(baseline), "--write-baseline"]
    ) == 0
    assert baseline.exists()
    assert cli_main(
        [str(bad_file), "--strict", "--baseline", str(baseline)]
    ) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # A *new* finding in the same file still gates.
    bad_file.write_text(BAD + "extra = time.monotonic()\n")
    assert cli_main(
        [str(bad_file), "--strict", "--baseline", str(baseline)]
    ) == 1


def test_write_baseline_requires_baseline_path(bad_file, capsys):
    assert cli_main([str(bad_file), "--write-baseline"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_corrupt_baseline_is_usage_error(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    assert cli_main([str(bad_file), "--baseline", str(baseline)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_verbose_shows_offending_source_line(bad_file, capsys):
    cli_main([str(bad_file), "--verbose"])
    assert "time.time()" in capsys.readouterr().out


def test_runner_dispatches_lint_subcommand(bad_file, capsys):
    assert runner_main(["lint", "--strict", str(bad_file)]) == 1
    assert "NF002" in capsys.readouterr().out


# Interprocedural on purpose: the per-node NF013 cannot see that `fetch`
# returns a MAC, so only the flow phase (NF103) catches the comparison.
FLOW_BAD = (
    "def fetch(feedback):\n"
    "    return feedback.mac\n"
    "\n"
    "def check(feedback, expected: bytes) -> bool:\n"
    "    return fetch(feedback) == expected\n"
)


@pytest.fixture
def flow_bad_file(tmp_path):
    pkg = tmp_path / "repro" / "runtime"
    pkg.mkdir(parents=True)
    path = pkg / "seeded.py"
    path.write_text(FLOW_BAD)
    return path


def test_flow_findings_gate_only_with_flow_flag(flow_bad_file, capsys):
    assert cli_main([str(flow_bad_file), "--strict"]) == 0
    assert cli_main([str(flow_bad_file), "--strict", "--flow"]) == 1
    out = capsys.readouterr().out
    assert "NF103" in out
    assert "path:" in out  # witness chain rendered in the message


def test_flow_graph_export_implies_flow(flow_bad_file, tmp_path, capsys):
    dot = tmp_path / "calls.dot"
    assert cli_main([str(flow_bad_file), "--strict",
                     "--flow-graph", str(dot)]) == 1
    assert dot.read_text().startswith("digraph")
    assert "check" in dot.read_text()


def test_glob_select_runs_rule_family(flow_bad_file, bad_file):
    # NF1* picks up exactly the flow family: NF002 in bad_file is ignored.
    assert cli_main([str(flow_bad_file), str(bad_file), "--strict",
                     "--flow", "--select", "NF1*"]) == 1
    assert cli_main([str(bad_file), "--strict", "--flow",
                     "--select", "NF1*"]) == 0
    assert cli_main([str(bad_file), "--strict", "--ignore", "NF0*"]) == 0


def test_glob_matching_nothing_is_usage_error(bad_file, capsys):
    assert cli_main([str(bad_file), "--select", "NF9*"]) == 2
    assert "NF9*" in capsys.readouterr().err


def test_github_format_emits_error_annotations(flow_bad_file, capsys):
    assert cli_main([str(flow_bad_file), "--flow", "--format", "github"]) == 0
    out = capsys.readouterr().out
    line = [l for l in out.splitlines() if l.startswith("::error")][0]
    assert f"file={flow_bad_file}" in line
    assert "line=5" in line
    assert "title=NF103 mac-compare-flow" in line
    assert "\n" not in line


def test_github_format_escapes_newlines_in_messages(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert cli_main([str(broken), "--format", "github"]) == 2
    out = capsys.readouterr().out
    annotation = [l for l in out.splitlines() if l.startswith("::error")][0]
    assert "title=NF000" in annotation


def test_json_flow_report_includes_witness(flow_bad_file, capsys):
    assert cli_main([str(flow_bad_file), "--flow", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (violation,) = payload["violations"]
    assert violation["code"] == "NF103"
    assert violation["witness"] == ["repro.runtime.seeded.check", "=="]


def test_list_rules_includes_flow_catalog(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("NF101", "NF102", "NF103"):
        assert code in out
