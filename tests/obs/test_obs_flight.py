"""Tests for the flight recorder and the ``runner flightdump`` printer."""

import json

from repro.obs.flight import FlightRecorder, cli_main, format_dump
from repro.obs.log import JsonLinesLogger
from repro.obs.spans import SpanRecorder

import io


def _wall():
    return 500.0


def test_rings_are_bounded_and_fed_by_sinks():
    flight = FlightRecorder(span_capacity=2, log_capacity=2,
                            metrics_capacity=2, wall=_wall)
    recorder = SpanRecorder(seed=1)
    recorder.add_sink(flight.record_span)
    log = JsonLinesLogger(stream=io.StringIO(), wall=_wall)
    log.add_sink(flight.record_log)
    for i in range(5):
        recorder.event(f"e{i}", ts=float(i))
        log.info(f"l{i}")
        flight.record_metrics({"i": i})
    assert [s["name"] for s in flight.spans] == ["e3", "e4"]
    assert [r["event"] for r in flight.logs] == ["l3", "l4"]
    assert [m["i"] for m in flight.metrics] == [3, 4]


def test_dump_is_first_trigger_wins(tmp_path):
    flight = FlightRecorder(wall=_wall)
    flight.record_metrics({"rx": 1})
    path = tmp_path / "dump.json"
    assert flight.dump(str(path), "slo_breach", {"share": 0.2}) == str(path)
    assert flight.triggered == "slo_breach"
    # A second trigger must not overwrite the forensic record.
    assert flight.dump(str(tmp_path / "other.json"), "sigusr1") is None
    assert flight.triggered == "slo_breach"
    payload = json.loads(path.read_text())
    assert payload["event"] == "flight_dump"
    assert payload["trigger"] == "slo_breach"
    assert payload["context"] == {"share": 0.2}
    assert payload["dumped_at"] == 500.0
    assert payload["metrics_snapshots"] == [{"rx": 1}]


def test_dump_write_failure_marks_triggered_but_returns_none(tmp_path):
    flight = FlightRecorder(wall=_wall)
    assert flight.dump(str(tmp_path / "no" / "dir" / "x.json"), "boom") is None
    assert flight.triggered == "boom"
    assert flight.dump_path is None


def test_format_dump_shows_moved_metrics_log_tail_and_trees():
    flight = FlightRecorder(wall=_wall)
    recorder = SpanRecorder(seed=1)
    recorder.add_sink(flight.record_span)
    root = recorder.event("loadgen.send", ts=1.0)
    recorder.event("serve.admit", parent=root.context, ts=1.1)
    flight.record_log({"ts": 2.0, "level": "error", "event": "drop",
                       "uid": 9})
    flight.record_metrics({"packets_rx": 0, "packets_dropped": 0})
    flight.record_metrics({"packets_rx": 50, "packets_dropped": 0})
    text = format_dump(flight.payload("slo_breach", {"share": 0.1}))
    assert "trigger=slo_breach" in text
    assert "context.share = 0.1" in text
    assert "packets_rx: 0 -> 50" in text
    assert "packets_dropped" not in text  # unmoved metrics stay quiet
    assert "[error] drop" in text
    assert "loadgen.send" in text
    assert "  serve.admit" in text  # child indented under the root


def test_dump_redacts_key_material_mid_traffic(tmp_path):
    # NF102's dynamic twin: however key material reaches the rings while
    # traffic is flowing, the forensic file must not carry the bytes.
    secret = "0badc0ffee" * 4
    flight = FlightRecorder(wall=_wall)
    log = JsonLinesLogger(stream=io.StringIO(), wall=_wall)
    log.add_sink(flight.record_log)
    recorder = SpanRecorder(seed=1)
    recorder.add_sink(flight.record_span)
    for i in range(3):
        recorder.event(f"admit{i}", ts=float(i))
        log.info("admit", uid=i)
        flight.record_metrics({"packets_rx": i, "secret_epochs": 2})
    log.info("rollover", master_secret=secret, key_epoch=7)
    flight.record_span({"name": "derive", "epoch_keys": [secret]})
    path = tmp_path / "dump.json"
    assert flight.dump(str(path), "sigusr1", {"token": secret}) == str(path)

    assert secret.encode() not in path.read_bytes()
    payload = json.loads(path.read_text())
    rollover = payload["logs"][-1]
    assert rollover["master_secret"] == "[REDACTED]"
    assert rollover["key_epoch"] == 7  # numeric telemetry stays readable
    assert payload["context"]["token"] == "[REDACTED]"
    assert payload["spans"][-1]["epoch_keys"] == ["[REDACTED]"]
    assert payload["metrics_snapshots"][-1]["secret_epochs"] == 2
    # The rings themselves are untouched; only the egress is redacted.
    assert flight.logs[-1]["master_secret"] == secret


def test_cli_pretty_prints_and_rejects_non_dumps(tmp_path, capsys):
    flight = FlightRecorder(wall=_wall)
    flight.record_metrics({"rx": 1})
    path = tmp_path / "dump.json"
    flight.dump(str(path), "sigusr1")

    assert cli_main([str(path)]) == 0
    assert "trigger=sigusr1" in capsys.readouterr().out

    assert cli_main([str(path), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["trigger"] == "sigusr1"

    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"event": "not_a_dump"}')
    assert cli_main([str(bogus)]) == 1
    assert "not a flight-recorder dump" in capsys.readouterr().err
    assert cli_main([str(tmp_path / "absent.json")]) == 1
