"""Tests for causal spans: contexts, the recorder ring, and tree stitching."""

import pytest

from repro.obs.spans import (
    Span,
    SpanContext,
    SpanRecorder,
    active_span_recorder,
    build_trees,
    format_tree,
    parse_span_id,
    set_span_recorder,
    span_id_str,
    use_span_recorder,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


# ---------------------------------------------------------------------------
# Ids and contexts
# ---------------------------------------------------------------------------

def test_span_id_str_roundtrips_and_masks():
    assert span_id_str(0x1234) == "0000000000001234"
    assert parse_span_id(span_id_str(0x1234)) == 0x1234
    assert parse_span_id(0x1234) == 0x1234
    assert parse_span_id((1 << 64) + 5) == 5  # masked to 64 bits


def test_child_of_links_trace_and_parent():
    root = SpanContext(trace_id=7, span_id=11)
    child = root.child_of(13)
    assert child == SpanContext(7, 13, 11)
    assert child.ids_dict() == {
        "trace": span_id_str(7),
        "span": span_id_str(13),
        "parent": span_id_str(11),
    }
    assert root.ids_dict()["parent"] is None  # parent_id 0 = root


# ---------------------------------------------------------------------------
# Recorder lifecycle
# ---------------------------------------------------------------------------

def test_recorder_seeded_ids_are_deterministic_and_nonzero():
    a, b = SpanRecorder(seed=42), SpanRecorder(seed=42)
    ids = [a.new_id() for _ in range(100)]
    assert ids == [b.new_id() for _ in range(100)]
    assert 0 not in ids


def test_start_finish_commits_to_ring_and_sinks():
    clock = FakeClock(1.0)
    recorder = SpanRecorder(clock=clock, seed=1)
    seen = []
    recorder.add_sink(seen.append)
    span = recorder.start("op", attrs={"k": "v"})
    assert len(recorder) == 0  # open spans are not in the ring
    clock.now = 1.5
    recorder.finish(span)
    assert len(recorder) == 1
    assert span.duration_s == pytest.approx(0.5)
    assert seen == [span.to_dict()]
    assert recorder.started == recorder.finished == 1


def test_event_is_instantaneous_child_of_carried_context():
    recorder = SpanRecorder(seed=1)
    parent = SpanContext(trace_id=5, span_id=9)
    span = recorder.event("serve.admit", parent=parent, ts=2.0,
                          status="drop", attrs={"uid": 3})
    assert span.start_ts == span.end_ts == 2.0
    assert span.context.trace_id == 5
    assert span.context.parent_id == 9
    assert span.status == "drop"
    assert recorder.by_trace(5) == [span]


def test_span_contextmanager_marks_errors():
    recorder = SpanRecorder(seed=1)
    with pytest.raises(RuntimeError):
        with recorder.span("boom"):
            raise RuntimeError("x")
    with recorder.span("fine"):
        pass
    statuses = [s.status for s in recorder.spans]
    assert statuses == ["error", "ok"]


def test_ring_is_bounded():
    recorder = SpanRecorder(capacity=4, seed=1)
    for i in range(10):
        recorder.event(f"e{i}", ts=float(i))
    assert len(recorder) == 4
    assert recorder.finished == 10
    assert [s.name for s in recorder.spans] == ["e6", "e7", "e8", "e9"]
    with pytest.raises(ValueError):
        SpanRecorder(capacity=0)


def test_explicit_ts_beats_clock_beats_none():
    recorder = SpanRecorder(seed=1)
    assert recorder.event("a").start_ts is None
    recorder.clock = FakeClock(3.0)
    assert recorder.event("b").start_ts == 3.0
    assert recorder.event("c", ts=9.0).start_ts == 9.0


# ---------------------------------------------------------------------------
# Global plumbing (mirrors repro.obs.trace)
# ---------------------------------------------------------------------------

def test_global_recorder_default_off_and_restored():
    assert active_span_recorder() is None
    recorder = SpanRecorder(seed=1)
    with use_span_recorder(recorder) as installed:
        assert installed is recorder
        assert active_span_recorder() is recorder
    assert active_span_recorder() is None
    previous = set_span_recorder(recorder)
    assert previous is None
    assert set_span_recorder(None) is recorder


# ---------------------------------------------------------------------------
# Tree reconstruction
# ---------------------------------------------------------------------------

def _dicts(recorder):
    return recorder.to_dicts()


def test_build_trees_relinks_across_processes():
    # loadgen roots the trace; serve's spans arrive from a second "log".
    lg = SpanRecorder(seed=1)
    root = lg.event("loadgen.send", ts=1.0)
    sv = SpanRecorder(seed=2)
    admit = sv.event("serve.admit", parent=root.context, ts=1.1)
    sv.event("serve.deliver", parent=admit.context, ts=1.2)
    trees = build_trees(_dicts(sv) + _dicts(lg))  # order must not matter
    assert len(trees) == 1
    tree = trees[0]
    assert tree["span"]["name"] == "loadgen.send"
    assert [c["span"]["name"] for c in tree["children"]] == ["serve.admit"]
    grand = tree["children"][0]["children"]
    assert [c["span"]["name"] for c in grand] == ["serve.deliver"]


def test_build_trees_promotes_orphans_and_dedups():
    recorder = SpanRecorder(seed=1)
    parent = SpanContext(trace_id=1, span_id=999)  # never logged
    orphan = recorder.event("serve.admit", parent=parent, ts=1.0)
    records = _dicts(recorder)
    trees = build_trees(records + records)  # duplicate log lines
    assert len(trees) == 1
    assert trees[0]["span"]["span"] == span_id_str(orphan.context.span_id)
    assert trees[0]["children"] == []


def test_format_tree_renders_process_status_and_attrs():
    recorder = SpanRecorder(seed=1)
    root = recorder.start("worker.point", ts=1.0, attrs={"key": "k"})
    recorder.finish(root, ts=1.25)
    child = recorder.event("worker.execute", parent=root, ts=1.1,
                           status="error")
    records = _dicts(recorder)
    records[0]["process"] = "worker"
    del child  # child rides in records[1] (ring order: finish order)
    text = format_tree(build_trees(records)[0])
    assert "worker.point" in text
    assert "<worker>" in text
    assert "250.000ms" in text
    assert "[error]" in text
    assert "'key': 'k'" in text
