"""Tests for the packet-path tracer and reason-code vocabulary."""

from dataclasses import dataclass, field
from itertools import count

import pytest

from repro.obs.trace import (
    QUEUE_DROP_REASONS,
    PacketTracer,
    ReasonCode,
    active_tracer,
    set_tracer,
    use_tracer,
)

_UIDS = count(1)


@dataclass
class FakePacket:
    src: str = "s1"
    dst: str = "d1"
    flow_id: str = "s1->d1"
    ptype: str = "regular"
    uid: int = field(default_factory=lambda: next(_UIDS))


def test_reason_code_drop_predicate_matches_prefix():
    assert ReasonCode.DROP_TAIL.is_drop
    assert ReasonCode.DROP_POLICED.is_drop
    assert not ReasonCode.ADMITTED_REQUEST.is_drop
    assert not ReasonCode.DELIVERED.is_drop
    drops = {code for code in ReasonCode if code.is_drop}
    assert drops == {code for code in ReasonCode if code.value.startswith("DROP_")}


def test_queue_drop_reason_mapping_is_total_over_queue_kinds():
    assert QUEUE_DROP_REASONS["tail"] is ReasonCode.DROP_TAIL
    assert QUEUE_DROP_REASONS["early"] is ReasonCode.DROP_RED
    assert all(reason.is_drop for reason in QUEUE_DROP_REASONS.values())


def test_emit_records_packet_identity_and_sequence():
    tracer = PacketTracer()
    packet = FakePacket()
    tracer.emit("queue:bottleneck", ReasonCode.DROP_TAIL, packet, ts=3.25,
                detail="qlen=64")
    (event,) = tracer.events
    assert event.uid == packet.uid
    assert event.src == "s1"
    assert event.dst == "d1"
    assert event.flow == "s1->d1"
    assert event.ts == 3.25
    assert event.point == "queue:bottleneck"
    assert event.reason is ReasonCode.DROP_TAIL
    assert event.detail == "qlen=64"
    assert "DROP_TAIL" in event.format()
    assert event.to_dict()["reason"] == "DROP_TAIL"


def test_ring_buffer_evicts_oldest_but_counts_everything():
    tracer = PacketTracer(capacity=3)
    packets = [FakePacket() for _ in range(5)]
    for i, packet in enumerate(packets):
        tracer.emit("p", ReasonCode.DELIVERED, packet, ts=float(i))
    assert tracer.emitted == 5
    assert len(tracer.events) == 3
    assert [e.uid for e in tracer.events] == [p.uid for p in packets[2:]]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PacketTracer(capacity=0)


def test_by_uid_reconstructs_one_packet_path():
    tracer = PacketTracer()
    victim, other = FakePacket(), FakePacket()
    tracer.emit("access", ReasonCode.ADMITTED_REGULAR, victim, ts=1.0)
    tracer.emit("access", ReasonCode.ADMITTED_REGULAR, other, ts=1.1)
    tracer.emit("queue:bottleneck", ReasonCode.DROP_TAIL, victim, ts=2.0)
    path = tracer.by_uid(victim.uid)
    assert [e.reason for e in path] == [
        ReasonCode.ADMITTED_REGULAR,
        ReasonCode.DROP_TAIL,
    ]
    assert tracer.by_uid(10**9) == []


def test_matching_filters_by_endpoint_and_reason():
    tracer = PacketTracer()
    a = FakePacket(src="alice", dst="bob", flow_id="alice->bob")
    b = FakePacket(src="carol", dst="bob", flow_id="carol->bob")
    tracer.emit("access", ReasonCode.ADMITTED_REGULAR, a, ts=0.0)
    tracer.emit("access", ReasonCode.RATE_LIMITED, b, ts=0.1)
    tracer.emit("queue", ReasonCode.DROP_TAIL, a, ts=0.2)

    alice = tracer.matching(follow="alice")
    assert [e.uid for e in alice] == [a.uid, a.uid]
    bob = tracer.matching(follow="bob")
    assert len(bob) == 3  # matches dst on every event

    limited = tracer.matching(reasons={ReasonCode.RATE_LIMITED})
    assert [e.uid for e in limited] == [b.uid]
    both = tracer.matching(follow="alice", reasons={ReasonCode.DROP_TAIL})
    assert [e.reason for e in both] == [ReasonCode.DROP_TAIL]


def test_reason_counts_and_dropped_uids():
    tracer = PacketTracer()
    first, second = FakePacket(), FakePacket()
    tracer.emit("q", ReasonCode.DROP_TAIL, first, ts=0.0)
    tracer.emit("q", ReasonCode.DROP_TAIL, second, ts=0.1)
    tracer.emit("q", ReasonCode.DROP_RED, first, ts=0.2)
    tracer.emit("q", ReasonCode.DELIVERED, second, ts=0.3)
    counts = dict(tracer.reason_counts())
    assert counts == {"DROP_TAIL": 2, "DROP_RED": 1, "DELIVERED": 1}
    # first-drop order, no duplicates
    assert tracer.dropped_uids() == [first.uid, second.uid]


def test_use_tracer_installs_and_restores():
    before = active_tracer()
    scoped = PacketTracer()
    with use_tracer(scoped) as active:
        assert active is scoped
        assert active_tracer() is scoped
    assert active_tracer() is before


def test_set_tracer_returns_previous():
    before = active_tracer()
    replacement = PacketTracer()
    old = set_tracer(replacement)
    try:
        assert old is before
        assert active_tracer() is replacement
    finally:
        set_tracer(before)


def test_default_tracer_is_inert():
    # The process-global default must not accumulate events from library
    # code paths that emit unconditionally.
    tracer = active_tracer()
    assert tracer is None or tracer.emitted == 0
