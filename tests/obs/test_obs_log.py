"""Tests for the JSON-lines structured logger and the stdlib bridge."""

import io
import json
import logging

import pytest

from repro.obs.log import JsonLinesLogger, bridge_stdlib
from repro.obs.spans import SpanContext, SpanRecorder


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def make_logger(**kwargs):
    stream = io.StringIO()
    kwargs.setdefault("wall", lambda: 100.0)
    return JsonLinesLogger(stream=stream, **kwargs), stream


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_emit_writes_one_sorted_json_line():
    log, stream = make_logger(name="serve")
    record = log.info("stats", packets_rx=5)
    (parsed,) = lines(stream)
    assert parsed == record
    assert parsed["event"] == "stats"
    assert parsed["level"] == "info"
    assert parsed["logger"] == "serve"
    assert parsed["ts"] == 100.0
    assert parsed["packets_rx"] == 5
    assert "sim_ts" not in parsed  # no clock injected


def test_injected_clock_adds_sim_ts():
    log, stream = make_logger(clock=FakeClock(42.5))
    log.info("tick")
    assert lines(stream)[0]["sim_ts"] == 42.5


def test_span_correlation_fields():
    log, stream = make_logger()
    context = SpanContext(trace_id=7, span_id=9, parent_id=3)
    log.emit("admit", span=context)
    (parsed,) = lines(stream)
    assert parsed["trace"] == f"{7:016x}"
    assert parsed["span"] == f"{9:016x}"
    assert parsed["parent"] == f"{3:016x}"


def test_min_level_filters_and_validates():
    log, stream = make_logger(min_level="warning")
    assert log.debug("noise") is None
    assert log.info("noise") is None
    assert log.error("real")["event"] == "real"
    assert [r["event"] for r in lines(stream)] == ["real"]
    with pytest.raises(ValueError):
        JsonLinesLogger(min_level="chatty")


def test_unserializable_values_degrade_to_repr_not_raise():
    log, stream = make_logger()
    log.info("weird", value=float("inf"), obj=object())
    (parsed,) = lines(stream)
    assert "inf" in parsed["value"]
    assert "object object" in parsed["obj"]


def test_sinks_observe_every_record():
    log, stream = make_logger()
    seen = []
    log.add_sink(seen.append)
    log.info("a")
    log.debug("b")
    assert [r["event"] for r in seen] == ["a", "b"]
    assert log.emitted == 2


def test_span_record_emits_span_event_with_process_label():
    log, stream = make_logger(name="loadgen")
    recorder = SpanRecorder(seed=1)
    span = recorder.event("loadgen.send", ts=1.0)
    log.span_record(span)                 # Span object form
    log.span_record(span.to_dict())       # dict form (post-run export)
    first, second = lines(stream)
    for parsed in (first, second):
        assert parsed["event"] == "span"
        assert parsed["level"] == "debug"
        assert parsed["name"] == "loadgen.send"
        assert parsed["process"] == "loadgen"
        assert parsed["span"] == f"{span.context.span_id:016x}"
    # A process label stamped by the originating process survives re-logging.
    foreign = span.to_dict()
    foreign["process"] = "serve"
    log.span_record(foreign)
    assert lines(stream)[2]["process"] == "serve"


def test_extra_cannot_clobber_record_identity():
    log, stream = make_logger(name="serve")
    log.emit("stats", extra={"ts": -1, "event": "forged", "logger": "x",
                             "payload": 7})
    (parsed,) = lines(stream)
    assert parsed["event"] == "stats"
    assert parsed["logger"] == "serve"
    assert parsed["ts"] == 100.0
    assert parsed["payload"] == 7


def test_bridge_stdlib_forwards_warnings():
    log, stream = make_logger()
    handler = bridge_stdlib(log, name="test-bridge-unique")
    stdlib = logging.getLogger("test-bridge-unique")
    try:
        stdlib.warning("engine %s failed", "x9")
        stdlib.debug("too quiet to cross the bridge")
    finally:
        stdlib.removeHandler(handler)
    (parsed,) = lines(stream)
    assert parsed["event"] == "stdlib_log"
    assert parsed["level"] == "warning"
    assert parsed["message"] == "engine x9 failed"
    assert parsed["stdlib_logger"] == "test-bridge-unique"
