"""Tests for metric export: snapshots, Prometheus text, and store rows."""

import pytest

from repro.obs.export import (
    commit_metric_rows,
    flat_name,
    metric_rows,
    prometheus_text,
    snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulator.engine import Simulator
from repro.store.result_store import ResultStore


def _populated_registry(clock=None):
    registry = MetricsRegistry(clock=clock)
    registry.counter("ingress_total", help="packets in",
                     labels={"router": "r1"}).inc(3)
    registry.counter("ingress_total", labels={"router": "r2"}).inc(1)
    registry.gauge("queue_depth", help="instant depth").set(7)
    hist = registry.histogram("delay_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


def test_flat_name_renders_frozen_label_pairs():
    assert flat_name("tx", ()) == "tx"
    assert flat_name("tx", (("a", "1"), ("b", "2"))) == 'tx{a="1",b="2"}'


def test_snapshot_flattens_instruments():
    snap = snapshot(_populated_registry())
    assert snap['ingress_total{router="r1"}'] == 3.0
    assert snap['ingress_total{router="r2"}'] == 1.0
    assert snap["queue_depth"] == 7.0
    assert snap["delay_seconds_count"] == 4.0
    assert snap["delay_seconds_sum"] == pytest.approx(5.555)
    assert "_ts" not in snap


def test_snapshot_timestamps_from_clock_or_argument():
    sim = Simulator()
    sim.schedule(4.0, lambda: None)
    sim.run()
    clocked = snapshot(_populated_registry(clock=sim))
    assert clocked["_ts"] == pytest.approx(4.0)
    explicit = snapshot(_populated_registry(), now=12.5)
    assert explicit["_ts"] == 12.5


def test_prometheus_text_format():
    text = prometheus_text(_populated_registry())
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# HELP ingress_total packets in" in lines
    assert lines.count("# HELP ingress_total packets in") == 1  # once per name
    assert "# TYPE ingress_total counter" in lines
    assert 'ingress_total{router="r1"} 3' in lines
    assert "# TYPE queue_depth gauge" in lines
    assert "# TYPE delay_seconds histogram" in lines
    assert 'delay_seconds_bucket{le="0.01"} 1' in lines
    assert 'delay_seconds_bucket{le="1"} 3' in lines
    assert 'delay_seconds_bucket{le="+Inf"} 4' in lines
    assert "delay_seconds_count 4" in lines
    # un-helped metric gets no HELP line
    assert not any(line.startswith("# HELP queue_depth ") and
                   line != "# HELP queue_depth instant depth"
                   for line in lines)


def test_metric_rows_shapes():
    rows = metric_rows(_populated_registry())
    by_kind = {}
    for row in rows:
        by_kind.setdefault(row["kind"], []).append(row)
    assert {r["labels"]["router"] for r in by_kind["counter"]} == {"r1", "r2"}
    (hist_row,) = by_kind["histogram"]
    assert hist_row["value"] == 4.0
    assert hist_row["sum"] == pytest.approx(5.555)
    assert [b["count"] for b in hist_row["buckets"]] == [1, 2, 3, 4]
    assert hist_row["buckets"][-1]["le"] == "+Inf"


def test_commit_metric_rows_to_fake_store():
    calls = []

    class FakeStore:
        def put_metric_rows(self, experiment, cache_key, rows, now=None):
            calls.append((experiment, cache_key, rows, now))

    registry = _populated_registry()
    n = commit_metric_rows(FakeStore(), "fig12", "cache-1", registry, now=9.0)
    assert n == len(calls[0][2]) == 4
    assert calls[0][:2] == ("fig12", "cache-1")
    assert calls[0][3] == 9.0


def test_commit_and_query_metric_rows_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "results.sqlite"), worker_id="w-test")
    registry = _populated_registry()
    n = commit_metric_rows(store, "fig12", "ck", registry, now=1.5)
    assert n == 4
    fetched = store.query_metric_rows(experiment="fig12")
    assert len(fetched) == 4
    names = {row["name"] for row in fetched}
    assert names == {"ingress_total", "queue_depth", "delay_seconds"}
    assert store.query_metric_rows(experiment="missing") == []
