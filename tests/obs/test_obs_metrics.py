"""Tests for the clock-agnostic metrics registry and its instruments."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.simulator.engine import Simulator


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

def test_counter_increments_and_rejects_negative():
    counter = Counter("events_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.collect() == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec_and_callback():
    gauge = Gauge("depth")
    gauge.set(7)
    gauge.inc(3)
    gauge.dec(1)
    assert gauge.collect() == pytest.approx(9.0)
    backing = [1, 2, 3]
    gauge.set_function(lambda: len(backing))
    assert gauge.collect() == 3.0
    backing.append(4)
    assert gauge.collect() == 4.0  # evaluated at collection, not at set time


def test_histogram_buckets_sum_count_and_cumulative():
    hist = Histogram("latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(56.05)
    assert hist.counts == [1, 2, 1, 1]  # per-bucket, +Inf last
    cumulative = hist.cumulative()
    assert cumulative[0] == (0.1, 1)
    assert cumulative[1] == (1.0, 3)
    assert cumulative[2] == (10.0, 4)
    assert cumulative[3] == (float("inf"), 5)


def test_histogram_rejects_unsorted_or_empty_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(1.0, 0.5))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_same_name_and_labels_return_the_same_child():
    registry = MetricsRegistry()
    a = registry.counter("tx", labels={"router": "r1"})
    b = registry.counter("tx", labels={"router": "r1"})
    c = registry.counter("tx", labels={"router": "r2"})
    assert a is b
    assert a is not c
    a.inc()
    assert b.collect() == 1.0
    assert len(registry) == 2


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    a = registry.gauge("g", labels={"x": 1, "y": 2})
    b = registry.gauge("g", labels={"y": 2, "x": 1})
    assert a is b


def test_iteration_is_sorted_by_name_then_labels():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a", labels={"k": "2"})
    registry.counter("a", labels={"k": "1"})
    keys = [(i.name, i.labels) for i in registry]
    assert keys == sorted(keys)


def test_watch_registers_a_callback_gauge():
    registry = MetricsRegistry()
    state = {"n": 5}
    gauge = registry.watch("state_size", lambda: state["n"])
    assert gauge.collect() == 5.0
    state["n"] = 9
    assert gauge.collect() == 9.0


def test_disabled_registry_hands_out_shared_nulls_and_registers_nothing():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("tx")
    gauge = registry.gauge("depth")
    hist = registry.histogram("lat")
    # All mutators are no-ops, nothing is registered.
    counter.inc()
    gauge.set(10)
    hist.observe(1.0)
    assert counter is NULL_COUNTER or counter.collect() == 0.0
    assert len(registry) == 0
    assert list(registry) == []


def test_registry_now_reads_the_injected_clock():
    sim = Simulator()
    registry = MetricsRegistry(clock=sim)
    assert registry.now == 0.0
    sim.schedule(2.5, lambda: None)
    sim.run()
    assert registry.now == pytest.approx(2.5)
    assert MetricsRegistry().now is None


def test_default_buckets_are_ascending():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_concurrent_factory_calls_yield_one_instrument():
    registry = MetricsRegistry()
    instruments = []

    def grab():
        instruments.append(registry.counter("shared"))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(map(id, instruments))) == 1


# ---------------------------------------------------------------------------
# Global default + scoped override
# ---------------------------------------------------------------------------

def test_process_global_default_registry_is_disabled():
    assert get_registry().enabled is False


def test_use_registry_swaps_in_and_back_out():
    before = get_registry()
    scoped = MetricsRegistry(enabled=True)
    with use_registry(scoped) as active:
        assert active is scoped
        assert get_registry() is scoped
    assert get_registry() is before


def test_set_registry_returns_the_previous_one():
    before = get_registry()
    replacement = MetricsRegistry(enabled=True)
    old = set_registry(replacement)
    try:
        assert old is before
        assert get_registry() is replacement
    finally:
        set_registry(before)
