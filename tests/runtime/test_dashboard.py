"""Tests for the dashboard service routes and the stdlib asyncio HTTP server."""

import asyncio
import dataclasses as dc
import json
import urllib.error
import urllib.request

import pytest

from repro.experiments.sweep import ScenarioSpec, SweepResult
from repro.runtime.dashboard import (
    DASHBOARD_HTML,
    DashboardService,
    cli_main,
)
from repro.runtime.httpd import HttpServer, json_response
from repro.store import ResultStore


@dc.dataclass
class Row:
    system: str
    deployment_fraction: float
    legit_share: float


@pytest.fixture
def store_path(tmp_path):
    store = ResultStore(str(tmp_path / "results.sqlite"), worker_id="w-dash")
    for system, share in (("netfence", 0.9), ("fq", 0.4)):
        spec = ScenarioSpec.make("fig12", seed=1, system=system,
                                 deployment_fraction=0.5)
        store.put_result(SweepResult(
            spec=spec, rows=[Row(system, 0.5, share)],
            elapsed_s=0.1, worker_id="w-dash"))
    return store.path


@pytest.fixture
def service(store_path):
    return DashboardService(store_path)


# ---------------------------------------------------------------------------
# Route handlers (sync, no sockets)
# ---------------------------------------------------------------------------

def test_root_serves_the_html_view(service):
    response = service.handle("/", {})
    assert response.status == 200
    assert b"repro dashboard" in response.body
    assert service.handle("/index.html", {}).body == response.body
    assert "repro dashboard" in DASHBOARD_HTML


def test_healthz(service):
    response = service.handle("/healthz", {})
    assert response.status == 200
    assert response.body == b"ok\n"


def test_unknown_path_returns_none_for_404(service):
    assert service.handle("/nope", {}) is None


def test_summary_lists_experiments(service):
    response = service.handle("/api/summary", {})
    payload = json.loads(response.body)
    assert payload["experiments"] == ["fig12"]


def test_payload_pivots_the_store(service):
    response = service.handle("/api/payload", {"experiment": "fig12"})
    assert response.status == 200
    payload = json.loads(response.body)
    assert payload["experiment"] == "fig12"
    assert payload["rows"] == 2
    assert payload["index_values"] == [0.5]
    series = {s["name"]: s["values"] for s in payload["series"]}
    assert series["netfence"] == [pytest.approx(0.9)]
    assert series["fq"] == [pytest.approx(0.4)]


def test_payload_without_experiment_is_400(service):
    response = service.handle("/api/payload", {})
    assert response.status == 400
    assert "experiment" in json.loads(response.body)["error"]


def test_payload_unknown_agg_is_400_not_500(service):
    response = service.handle("/api/payload",
                              {"experiment": "fig12", "agg": "p99"})
    assert response.status == 400


def test_queue_without_configuration_reports_error(service):
    payload = json.loads(service.handle("/api/queue", {}).body)
    assert "error" in payload


def test_queue_with_missing_directory_reports_error(store_path, tmp_path):
    service = DashboardService(store_path,
                               queue_dir=str(tmp_path / "missing-queue"))
    payload = json.loads(service.handle("/api/queue", {}).body)
    assert "not found" in payload["error"]


def test_serve_tail_parses_jsonl_and_skips_garbage(store_path, tmp_path):
    log = tmp_path / "serve.jsonl"
    events = [{"event": "stats", "now": float(i), "packets_rx": i}
              for i in range(5)]
    lines = [json.dumps(e) for e in events]
    lines.insert(2, "not json at all")
    lines.insert(4, "")
    log.write_text("\n".join(lines) + "\n")

    service = DashboardService(store_path, serve_log=str(log))
    payload = json.loads(service.handle("/api/serve", {"limit": "3"}).body)
    assert [e["packets_rx"] for e in payload["events"]] == [2, 3, 4]

    bad = service.handle("/api/serve", {"limit": "many"})
    assert bad.status == 400


def test_serve_tail_without_log_reports_error(service):
    payload = json.loads(service.handle("/api/serve", {}).body)
    assert "error" in payload
    assert payload["events"] == []


def test_fleet_reports_worker_rows(store_path):
    store = ResultStore(store_path, worker_id="w-dash")
    store.put_worker_rows([
        {"worker_id": "w-1", "experiment": "fig12", "cache_key": "k1",
         "attempt": 1, "claim_latency_s": 0.25, "heartbeat_renewals": 3,
         "elapsed_s": 1.5, "rss_kb": 40_000, "outcome": "completed"},
        {"worker_id": "w-1", "experiment": "fig12", "cache_key": "k2",
         "attempt": 2, "claim_latency_s": 0.05, "heartbeat_renewals": 1,
         "elapsed_s": 0.5, "rss_kb": 41_000, "outcome": "completed"},
    ])
    service = DashboardService(store_path)
    payload = json.loads(service.handle("/api/fleet", {}).body)
    (worker,) = payload["workers"]
    assert worker["worker_id"] == "w-1"
    assert worker["points"] == 2
    assert worker["retried_points"] == 1
    assert worker["heartbeat_renewals"] == 4
    assert worker["max_rss_kb"] == 41_000


def test_fleet_empty_store_is_not_an_error(service):
    payload = json.loads(service.handle("/api/fleet", {}).body)
    assert payload["workers"] == []


def test_bench_reports_perf_trajectory(service):
    payload = json.loads(service.handle("/api/bench", {}).body)
    assert [e["experiment"] for e in payload["trajectory"]] == ["fig12"]
    entry = payload["trajectory"][0]
    assert entry["points"] == 2
    # Each point executed once: no repeats, so no trend to report.
    assert entry["regression_pct"] is None


def test_dashboard_html_has_fleet_and_bench_panels():
    assert "fleet" in DASHBOARD_HTML
    assert "bench" in DASHBOARD_HTML
    assert "/api/fleet" in DASHBOARD_HTML
    assert "/api/bench" in DASHBOARD_HTML


# ---------------------------------------------------------------------------
# End-to-end over a real socket
# ---------------------------------------------------------------------------

def _fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read()


def test_http_server_serves_the_dashboard_end_to_end(service):
    async def scenario():
        server = service.server()
        host, port = await server.start("127.0.0.1", 0)
        assert server.serving
        base = f"http://{host}:{port}"
        loop = asyncio.get_running_loop()
        try:
            status, body = await loop.run_in_executor(
                None, _fetch, f"{base}/api/summary")
            assert status == 200
            assert json.loads(body)["experiments"] == ["fig12"]
            status, body = await loop.run_in_executor(
                None, _fetch, f"{base}/")
            assert b"repro dashboard" in body
            with pytest.raises(urllib.error.HTTPError) as err:
                await loop.run_in_executor(None, _fetch, f"{base}/nope")
            assert err.value.code == 404
        finally:
            await server.close()
        assert not server.serving

    asyncio.run(scenario())


def test_http_server_rejects_non_get_methods():
    async def scenario():
        server = HttpServer(lambda path, query: json_response({"ok": True}))
        host, port = await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"POST / HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            status_line = await reader.readline()
            assert b"405" in status_line
            writer.close()
            await writer.wait_closed()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_http_server_head_strips_the_body():
    async def scenario():
        server = HttpServer(lambda path, query: json_response({"ok": True}))
        host, port = await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"HEAD / HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"200" in head.splitlines()[0]
            assert body == b""
            writer.close()
            await writer.wait_closed()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_http_server_handler_exception_becomes_500():
    def boom(path, query):
        raise RuntimeError("kaboom")

    async def scenario():
        server = HttpServer(boom)
        host, port = await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            assert b"500" in raw.splitlines()[0]
            assert b"kaboom" in raw
            writer.close()
            await writer.wait_closed()
        finally:
            await server.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_main_rejects_missing_store(tmp_path, capsys):
    assert cli_main(["--store", str(tmp_path / "absent.sqlite")]) == 1
    assert "not found" in capsys.readouterr().err


def test_cli_main_serves_for_duration(store_path, capsys):
    assert cli_main(["--store", store_path, "--port", "0",
                     "--duration", "0.2", "--json"]) == 0
    listening = json.loads(capsys.readouterr().out.splitlines()[0])
    assert listening["event"] == "listening"
    assert listening["port"] > 0
