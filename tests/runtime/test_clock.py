"""The Clock seam: Simulator and WallClock behind one interface."""

import asyncio

from repro.runtime.clock import Clock, ClockHandle, WallClock
from repro.simulator.engine import PeriodicTimer, Simulator


def test_simulator_satisfies_clock_protocol():
    sim = Simulator()
    assert isinstance(sim, Clock)
    event = sim.schedule(1.0, lambda: None)
    assert isinstance(event, ClockHandle)


def test_wallclock_satisfies_clock_protocol():
    async def check():
        clock = WallClock(asyncio.get_running_loop())
        assert isinstance(clock, Clock)
        handle = clock.schedule(10.0, lambda: None)
        assert isinstance(handle, ClockHandle)
        clock.cancel(handle)

    asyncio.run(check())


def test_wallclock_now_is_unix_anchored():
    import time

    async def check():
        clock = WallClock(asyncio.get_running_loop())
        assert abs(clock.now - time.time()) < 1.0

    asyncio.run(check())


def test_wallclock_schedule_ordering():
    async def check():
        clock = WallClock(asyncio.get_running_loop())
        fired = []
        done = asyncio.Event()
        clock.schedule(0.03, lambda: (fired.append("late"), done.set()))
        clock.schedule(0.01, fired.append, "early")
        clock.schedule_at(clock.now, fired.append, "immediate")
        clock.schedule(-5.0, fired.append, "clamped")  # negative delay → now
        await asyncio.wait_for(done.wait(), timeout=2.0)
        assert fired[-1] == "late"
        assert set(fired[:-1]) == {"early", "immediate", "clamped"}

    asyncio.run(check())


def test_wallclock_cancel():
    async def check():
        clock = WallClock(asyncio.get_running_loop())
        fired = []
        handle = clock.schedule(0.01, fired.append, "cancelled")
        clock.cancel(handle)
        clock.cancel(None)  # tolerated, like Simulator.cancel
        await asyncio.sleep(0.05)
        assert fired == []

    asyncio.run(check())


def test_periodic_timer_runs_over_wallclock():
    """The same PeriodicTimer that drives AIMD/detection in simulations
    ticks over a real event loop."""

    async def check():
        clock = WallClock(asyncio.get_running_loop())
        ticks = []
        timer = PeriodicTimer(clock, 0.02, lambda: ticks.append(clock.now))
        timer.start()
        await asyncio.sleep(0.11)
        timer.stop()
        count = len(ticks)
        await asyncio.sleep(0.05)
        assert len(ticks) == count  # stop() really cancels
        assert count >= 3

    asyncio.run(check())
