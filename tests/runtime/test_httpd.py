"""Hostile-client and concurrency tests for the stdlib asyncio HTTP server.

The dashboard tests cover the happy paths end-to-end; these focus on the
server surviving clients that are slow, oversized, or simply numerous —
the failure modes a long-lived telemetry port actually meets.
"""

import asyncio

from repro.runtime.httpd import HttpServer, Response, json_response


async def _request(host, port, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return response


def test_concurrent_clients_all_get_answers():
    hits = []

    def handler(path, query):
        hits.append(path)
        return json_response({"path": path})

    async def scenario():
        server = HttpServer(handler)
        host, port = await server.start("127.0.0.1", 0)
        try:
            responses = await asyncio.gather(*[
                _request(host, port,
                         f"GET /c{i} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
                for i in range(20)
            ])
        finally:
            await server.close()
        return responses

    responses = asyncio.run(scenario())
    assert len(responses) == 20
    for raw in responses:
        assert raw.splitlines()[0] == b"HTTP/1.1 200 OK"
    assert sorted(hits) == sorted(f"/c{i}" for i in range(20))


def test_oversized_request_line_is_400_not_a_crash():
    async def scenario():
        server = HttpServer(lambda path, query: json_response({}))
        host, port = await server.start("127.0.0.1", 0)
        try:
            monster = b"GET /" + b"a" * 100_000 + b" HTTP/1.1\r\n\r\n"
            raw = await _request(host, port, monster)
            assert b"400" in raw.splitlines()[0]
            # The server must still answer well-formed requests afterwards.
            ok = await _request(host, port,
                                b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            assert b"200" in ok.splitlines()[0]
        finally:
            await server.close()

    asyncio.run(scenario())


def test_slowloris_request_times_out_with_408():
    async def scenario():
        server = HttpServer(lambda path, query: json_response({}),
                            request_timeout=0.2)
        host, port = await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            # Dribble a request that never finishes its line.
            writer.write(b"GET /slow")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=5)
            assert b"408" in raw.splitlines()[0]
            assert b"Request Timeout" in raw.splitlines()[0]
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
            # A prompt client is unaffected by the short timeout.
            ok = await _request(host, port,
                                b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            assert b"200" in ok.splitlines()[0]
        finally:
            await server.close()

    asyncio.run(scenario())


def test_header_only_slowloris_also_times_out():
    async def scenario():
        server = HttpServer(lambda path, query: json_response({}),
                            request_timeout=0.2)
        host, port = await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection(host, port)
            # Complete request line, then hold the headers open forever.
            writer.write(b"GET / HTTP/1.1\r\nX-Drip: 1\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=5)
            assert b"408" in raw.splitlines()[0]
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
        finally:
            await server.close()

    asyncio.run(scenario())


def test_408_reason_phrase_is_registered():
    assert b"408 Request Timeout" in Response(b"", status=408).encode()
