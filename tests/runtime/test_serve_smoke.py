"""In-process smoke test: live policer + loadgen over loopback.

Starts a :class:`~repro.runtime.serve.LivePolicer` on an ephemeral UDP port
and drives it with the loadgen scenario (legitimate senders plus flooders
the victim refuses to return feedback to).  The invariants mirror the CI
serve-smoke job:

* legitimate senders keep the majority of the victim's goodput — the
  flooders never obtain valid feedback, so they are confined to the
  request channel's 5 % bandwidth cap;
* every regular packet the policer emits carries feedback that validates
  against the access router's secret (``unverified_admissions == 0``);
* the feedback loop actually ran (regular packets were admitted, dedicated
  feedback packets flowed back to the senders).
"""

import asyncio
import urllib.request

from repro.runtime.loadgen import run_scenario
from repro.runtime.serve import metrics_endpoint, start_policer

CAPACITY_BPS = 1_000_000.0


def test_live_policer_under_flood():
    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        port = policer.transport.get_extra_info("sockname")[1]
        try:
            result = await run_scenario(
                ("127.0.0.1", port),
                legit=2,
                attackers=2,
                legit_rate_bps=120_000.0,
                attack_rate_bps=480_000.0,
                warmup_s=2.0,
                duration_s=3.0,
                capacity_bps=CAPACITY_BPS,
            )
        finally:
            await policer.shutdown()
        return policer, result

    policer, result = asyncio.run(scenario())
    stats = policer.stats(event="final")

    # Traffic flowed end to end, and the NetFence bootstrap completed:
    # request -> nop feedback -> regular channel.
    assert result["victim_rx_packets"] > 0
    assert result["feedback_packets_sent"] > 0
    assert stats["access"]["regular_nop"] > 0
    assert result["codec_errors"] == 0
    assert stats["codec_errors"] == 0

    # The victim withholds feedback from the attackers, so their floods ride
    # the capped request channel: legitimate senders keep the goodput.
    assert result["legit_share"] >= 0.6, result

    # Zero unverified admissions: every regular packet the policer forwarded
    # carried freshly re-stamped, verifiable feedback.
    assert stats["unverified_admissions"] == 0, stats


def test_metrics_endpoint_exposes_live_counters():
    """/metrics serves Prometheus text with nonzero ingress counters and a
    zero unverified-admissions counter after a short loopback run."""

    def _fetch(url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.read().decode("utf-8")

    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        udp_port = policer.transport.get_extra_info("sockname")[1]
        server = metrics_endpoint(policer)
        host, http_port = await server.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        base = f"http://{host}:{http_port}"
        try:
            await run_scenario(
                ("127.0.0.1", udp_port),
                legit=1,
                attackers=0,
                legit_rate_bps=120_000.0,
                warmup_s=0.5,
                duration_s=1.0,
                capacity_bps=CAPACITY_BPS,
            )
            text = await loop.run_in_executor(None, _fetch, f"{base}/metrics")
            health = await loop.run_in_executor(None, _fetch, f"{base}/healthz")
        finally:
            await server.close()
            await policer.shutdown()
        return text, health

    text, health = asyncio.run(scenario())
    assert health == "ok\n"
    assert "# TYPE netfence_serve_events_total gauge" in text

    values = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        key, _, value = line.rpartition(" ")
        values[key] = float(value)
    assert values['netfence_serve_events_total{event="packets_rx"}'] > 0
    assert values['netfence_serve_events_total{event="packets_tx"}'] > 0
    assert values['netfence_serve_events_total{event="unverified_admissions"}'] == 0
    assert values["netfence_serve_registered_hosts"] >= 1


def test_policer_shutdown_drains_and_stops_timers():
    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        await policer.shutdown()
        # Shutdown is idempotent and leaves no running drain task.
        assert policer._drain_task is not None
        assert policer._drain_task.done()
        await policer.shutdown()

    asyncio.run(scenario())
