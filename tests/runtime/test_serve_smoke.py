"""In-process smoke test: live policer + loadgen over loopback.

Starts a :class:`~repro.runtime.serve.LivePolicer` on an ephemeral UDP port
and drives it with the loadgen scenario (legitimate senders plus flooders
the victim refuses to return feedback to).  The invariants mirror the CI
serve-smoke job:

* legitimate senders keep the majority of the victim's goodput — the
  flooders never obtain valid feedback, so they are confined to the
  request channel's 5 % bandwidth cap;
* every regular packet the policer emits carries feedback that validates
  against the access router's secret (``unverified_admissions == 0``);
* the feedback loop actually ran (regular packets were admitted, dedicated
  feedback packets flowed back to the senders).
"""

import asyncio

from repro.runtime.loadgen import run_scenario
from repro.runtime.serve import start_policer

CAPACITY_BPS = 1_000_000.0


def test_live_policer_under_flood():
    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        port = policer.transport.get_extra_info("sockname")[1]
        try:
            result = await run_scenario(
                ("127.0.0.1", port),
                legit=2,
                attackers=2,
                legit_rate_bps=120_000.0,
                attack_rate_bps=480_000.0,
                warmup_s=2.0,
                duration_s=3.0,
                capacity_bps=CAPACITY_BPS,
            )
        finally:
            await policer.shutdown()
        return policer, result

    policer, result = asyncio.run(scenario())
    stats = policer.stats(event="final")

    # Traffic flowed end to end, and the NetFence bootstrap completed:
    # request -> nop feedback -> regular channel.
    assert result["victim_rx_packets"] > 0
    assert result["feedback_packets_sent"] > 0
    assert stats["access"]["regular_nop"] > 0
    assert result["codec_errors"] == 0
    assert stats["codec_errors"] == 0

    # The victim withholds feedback from the attackers, so their floods ride
    # the capped request channel: legitimate senders keep the goodput.
    assert result["legit_share"] >= 0.6, result

    # Zero unverified admissions: every regular packet the policer forwarded
    # carried freshly re-stamped, verifiable feedback.
    assert stats["unverified_admissions"] == 0, stats


def test_policer_shutdown_drains_and_stops_timers():
    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        await policer.shutdown()
        # Shutdown is idempotent and leaves no running drain task.
        assert policer._drain_task is not None
        assert policer._drain_task.done()
        await policer.shutdown()

    asyncio.run(scenario())
