"""Tests for ``runner bench report``: trajectory trends and the CI gate."""

import json

import pytest

from repro.analysis.bench_report import bench_headlines, cli_main, perf_report


def _row(experiment="fig12", cache_key="ck-1", elapsed_s=1.0):
    return {"experiment": experiment, "cache_key": cache_key,
            "elapsed_s": elapsed_s}


def test_perf_report_trends_only_repeated_points():
    report = perf_report([
        _row(cache_key="ck-1", elapsed_s=1.0),   # baseline
        _row(cache_key="ck-2", elapsed_s=5.0),   # executed once: no trend
        _row(cache_key="ck-1", elapsed_s=1.5),   # latest
    ])
    (entry,) = report
    assert entry["experiment"] == "fig12"
    assert entry["points"] == 2
    assert entry["executions"] == 3
    assert entry["repeated_points"] == 1
    assert entry["baseline_s"] == pytest.approx(1.0)
    assert entry["latest_s"] == pytest.approx(1.5)
    assert entry["regression_pct"] == pytest.approx(50.0)


def test_perf_report_no_repeats_has_no_trend():
    report = perf_report([_row(cache_key="ck-1"), _row(cache_key="ck-2")])
    assert report[0]["regression_pct"] is None


def test_perf_report_sorts_experiments():
    report = perf_report([_row(experiment="fig9"), _row(experiment="fig12")])
    assert [e["experiment"] for e in report] == ["fig12", "fig9"]


def test_bench_headlines_flattens_numeric_leaves():
    headlines = bench_headlines({
        "hotpath": {"enqueue_us": 1.5, "note": "text ignored",
                    "nested": {"ok": True, "n": 3}},
        "rows": [1, 2, 3],  # lists elided
    })
    assert headlines == {"hotpath.enqueue_us": 1.5, "hotpath.nested.n": 3.0}


def test_cli_gates_on_regression(tmp_path, capsys):
    from repro.store.result_store import ResultStore
    from repro.experiments.sweep import ScenarioSpec, SweepResult

    store = ResultStore(str(tmp_path / "r.sqlite"), worker_id="w-bench")
    spec = ScenarioSpec.make("figX", seed=1, scale=1)
    for elapsed in (1.0, 3.0):  # +200% on re-execution
        store.put_result(SweepResult(spec=spec, rows=[], elapsed_s=elapsed,
                                     worker_id="w-bench"))

    args = ["report", "--store", store.path,
            "--bench-json", str(tmp_path / "absent.json")]
    assert cli_main(args + ["--fail-on-regression", "250"]) == 0
    capsys.readouterr()
    assert cli_main(args + ["--fail-on-regression", "50"]) == 1
    captured = capsys.readouterr()
    assert "regressed" in captured.err
    assert "+200.00%" in captured.err


def test_cli_json_output_includes_headlines(tmp_path, capsys):
    artifact = tmp_path / "BENCH.json"
    artifact.write_text(json.dumps({"obs": {"overhead_ratio": 1.01}}))
    assert cli_main(["report", "--bench-json", str(artifact),
                     "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["headlines"] == {"obs.overhead_ratio": 1.01}
    assert payload["trajectory"] == []
    assert payload["regressed"] == []


def test_cli_missing_artifact_is_not_an_error(capsys):
    assert cli_main(["report", "--bench-json", "/nonexistent/bench.json"]) == 0
    assert "no executions recorded" in capsys.readouterr().out
