"""Tests for result aggregation: group_reduce, pivot_table, dashboard_payload."""

import math

import pytest

from repro.analysis.aggregate import (
    AGGREGATORS,
    dashboard_payload,
    group_reduce,
    pivot_table,
)

ROWS = [
    {"strategy": "netfence", "scale": 25, "goodput": 0.9},
    {"strategy": "netfence", "scale": 50, "goodput": 0.7},
    {"strategy": "fq", "scale": 25, "goodput": 0.4},
    {"strategy": "fq", "scale": 50, "goodput": 0.2},
]


# ---------------------------------------------------------------------------
# group_reduce
# ---------------------------------------------------------------------------

def test_group_reduce_mean_by_strategy():
    out = group_reduce(ROWS, by=["strategy"], value="goodput", agg="mean")
    by_strategy = {entry["strategy"]: entry for entry in out}
    assert by_strategy["netfence"]["mean_goodput"] == pytest.approx(0.8)
    assert by_strategy["fq"]["mean_goodput"] == pytest.approx(0.3)
    assert by_strategy["netfence"]["n"] == 2


def test_group_reduce_all_aggregators_agree_on_singleton():
    row = [{"k": "a", "v": 3.0}]
    for agg in AGGREGATORS:
        out = group_reduce(row, by=["k"], value="v", agg=agg)
        expected = 1 if agg == "count" else 3.0
        assert out[0][f"{agg}_v"] == expected, agg


def test_group_reduce_skips_non_numeric_bool_and_nonfinite():
    rows = [
        {"k": "a", "v": 1.0},
        {"k": "a", "v": "oops"},
        {"k": "a", "v": True},
        {"k": "a", "v": math.nan},
        {"k": "a", "v": None},
    ]
    out = group_reduce(rows, by=["k"], value="v", agg="sum")
    assert out[0]["sum_v"] == pytest.approx(1.0)


def test_group_reduce_group_with_no_numeric_values_yields_none():
    rows = [{"k": "a", "v": "text"}]
    out = group_reduce(rows, by=["k"], value="v", agg="mean")
    assert out[0]["mean_v"] is None
    assert out[0]["n"] == 0  # n counts numeric contributions only


def test_group_reduce_unknown_aggregator_raises():
    with pytest.raises(KeyError):
        group_reduce(ROWS, by=["strategy"], value="goodput", agg="mode")


def test_group_reduce_empty_rows():
    assert group_reduce([], by=["strategy"], value="goodput", agg="mean") == []


# ---------------------------------------------------------------------------
# pivot_table
# ---------------------------------------------------------------------------

def _series(table):
    return {s["name"]: s["values"] for s in table["series"]}


def test_pivot_table_index_by_column():
    table = pivot_table(ROWS, index="scale", column="strategy", value="goodput")
    assert table["index"] == "scale"
    assert table["index_values"] == [25, 50]  # first-appearance order
    series = _series(table)
    assert series["netfence"] == [pytest.approx(0.9), pytest.approx(0.7)]
    assert series["fq"] == [pytest.approx(0.4), pytest.approx(0.2)]


def test_pivot_table_fills_missing_cells_with_none():
    sparse = ROWS[:3]  # fq has no scale=50 row
    table = pivot_table(sparse, index="scale", column="strategy", value="goodput")
    assert _series(table)["fq"] == [pytest.approx(0.4), None]


def test_pivot_table_unknown_column_collapses_to_single_series():
    table = pivot_table(ROWS, index="scale", column="nope", value="goodput")
    series = _series(table)
    assert list(series.keys()) == [None]
    assert len(series[None]) == len(table["index_values"])


def test_pivot_table_unknown_aggregator_raises():
    with pytest.raises(KeyError):
        pivot_table(ROWS, index="scale", column="strategy",
                    value="goodput", agg="p99")


def test_pivot_table_empty_rows():
    table = pivot_table([], index="scale", column="strategy", value="goodput")
    assert table["index_values"] == []
    assert table["series"] == []


# ---------------------------------------------------------------------------
# dashboard_payload
# ---------------------------------------------------------------------------

class FakeStore:
    path = "/tmp/fake.sqlite"

    def __init__(self, rows):
        self._rows = rows
        self.queries = []

    def query_rows(self, experiment=None, params=None):
        self.queries.append((experiment, params))
        return list(self._rows)


def test_dashboard_payload_attaches_provenance_and_forwards_params():
    store = FakeStore(ROWS)
    payload = dashboard_payload(
        store, "fig12", index="scale", column="strategy", value="goodput",
        params={"seed": 1},
    )
    assert payload["experiment"] == "fig12"
    assert payload["rows"] == 4
    assert payload["store_path"] == "/tmp/fake.sqlite"
    assert _series(payload)["netfence"][0] == pytest.approx(0.9)
    assert store.queries == [("fig12", {"seed": 1})]


def test_dashboard_payload_empty_store():
    payload = dashboard_payload(
        FakeStore([]), "fig12", index="scale", column="strategy",
        value="goodput",
    )
    assert payload["rows"] == 0
    assert payload["index_values"] == []
    assert payload["series"] == []


def test_dashboard_payload_unknown_aggregator_raises():
    with pytest.raises(KeyError):
        dashboard_payload(FakeStore(ROWS), "fig12", index="scale",
                          column="strategy", value="goodput", agg="nope")
