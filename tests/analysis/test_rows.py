"""Tests for the row serialization helpers used by sweeps and the CLI."""

import collections
import json
from dataclasses import dataclass

import pytest

from repro.analysis.rows import json_safe, row_to_dict, rows_to_dicts, rows_to_json


@dataclass
class _Row:
    name: str
    value: float


def test_row_to_dict_accepts_dataclass_mapping_and_namedtuple():
    assert row_to_dict(_Row("a", 1.5)) == {"name": "a", "value": 1.5}
    assert row_to_dict({"k": 1}) == {"k": 1}
    Point = collections.namedtuple("Point", "x y")
    assert row_to_dict(Point(1, 2)) == {"x": 1, "y": 2}


def test_row_to_dict_rejects_unknown_types():
    with pytest.raises(TypeError):
        row_to_dict(42)


def test_rows_to_json_is_strict_json_despite_nan_and_bytes():
    text = rows_to_json([_Row("no-transfers", float("nan")),
                         {"mac": b"\x01\x02", "util": float("inf")}])
    data = json.loads(text)  # json.loads with default settings accepts NaN…
    json.loads(text, parse_constant=lambda _: pytest.fail("non-strict token"))
    assert data[0]["value"] is None
    assert data[1]["mac"] == "0102"
    assert data[1]["util"] is None


def test_json_safe_recurses_into_containers():
    assert json_safe({"a": [float("nan"), (b"\xff",)]}) == {"a": [None, ["ff"]]}
    assert json_safe(1.25) == 1.25


def test_rows_to_dicts_preserves_order():
    rows = rows_to_dicts([_Row("x", 1.0), _Row("y", 2.0)])
    assert [r["name"] for r in rows] == ["x", "y"]
