"""Tests for fairness metrics."""

import pytest

from repro.analysis.metrics import (
    ThroughputSummary,
    jain_fairness_index,
    summarize_throughputs,
    throughput_ratio,
)


def test_jain_index_equal_allocation_is_one():
    assert jain_fairness_index([5.0] * 10) == pytest.approx(1.0)


def test_jain_index_single_winner():
    # One sender gets everything among n: index = 1/n.
    assert jain_fairness_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_index_bounds():
    values = [1.0, 2.0, 3.0, 4.0]
    index = jain_fairness_index(values)
    assert 1.0 / len(values) <= index <= 1.0


def test_jain_index_scale_invariant():
    values = [1.0, 2.0, 5.0]
    assert jain_fairness_index(values) == pytest.approx(
        jain_fairness_index([v * 1000 for v in values]))


def test_jain_index_degenerate_cases():
    assert jain_fairness_index([]) == 1.0
    assert jain_fairness_index([0.0, 0.0]) == 1.0


def test_throughput_ratio_basic():
    assert throughput_ratio([100.0, 100.0], [200.0, 200.0]) == pytest.approx(0.5)


def test_throughput_ratio_edge_cases():
    assert throughput_ratio([], [1.0]) == 0.0
    assert throughput_ratio([1.0], []) == float("inf")
    assert throughput_ratio([1.0], [0.0]) == float("inf")
    assert throughput_ratio([0.0], [0.0]) == 0.0


def test_summary_from_values():
    summary = ThroughputSummary.from_values([1.0, 2.0, 3.0])
    assert summary.count == 3
    assert summary.mean_bps == pytest.approx(2.0)
    assert summary.min_bps == 1.0 and summary.max_bps == 3.0


def test_summarize_throughputs_by_group():
    throughputs = {"u1": 10.0, "u2": 20.0, "a1": 100.0}
    groups = {"users": ["u1", "u2"], "attackers": ["a1"], "ghosts": ["nope"]}
    summary = summarize_throughputs(throughputs, groups)
    assert summary["users"].mean_bps == pytest.approx(15.0)
    assert summary["attackers"].count == 1
    assert summary["ghosts"].mean_bps == 0.0
