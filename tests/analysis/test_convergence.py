"""Tests for the Appendix A fluid model and fair-share bound."""

import pytest

from repro.analysis.convergence import AimdFluidModel, FluidSender, fair_share_lower_bound


def test_bound_formula():
    # ν=1, δ=0.1, C=10 Mbps, 100 senders: 0.9^3 * 100 Kbps = 72.9 Kbps.
    bound = fair_share_lower_bound(10e6, 25, 75, delta=0.1, nu=1.0)
    assert bound == pytest.approx(0.9 ** 3 * 10e6 / 100)


def test_bound_requires_senders():
    with pytest.raises(ValueError):
        fair_share_lower_bound(1e6, 0, 0)


def test_fluid_model_converges_to_fairness():
    senders = [FluidSender(name=f"s{i}", rate_limit_bps=10_000 * (i + 1))
               for i in range(10)]
    model = AimdFluidModel(1e6, senders)
    model.run(300)
    assert model.final_fairness > 0.95


def test_fluid_model_rate_limits_converge_to_fair_share():
    senders = [FluidSender(name=f"s{i}") for i in range(10)]
    model = AimdFluidModel(1e6, senders)
    model.run(400)
    fair = 1e6 / 10
    for sender in senders:
        assert sender.rate_limit_bps == pytest.approx(fair, rel=0.35)


def test_fluid_model_guarantee_holds_against_on_off_attackers():
    good = [FluidSender(name=f"g{i}") for i in range(5)]
    bad = [FluidSender(name=f"b{i}", is_legitimate=False,
                       demand_fn=lambda i: 1e6 if (i // 3) % 2 == 0 else 0.0)
           for i in range(15)]
    model = AimdFluidModel(2e6, good + bad)
    model.run(400)
    bound = fair_share_lower_bound(2e6, 5, 15, delta=0.1)
    for sender in good:
        assert model.average_rate(sender, last_intervals=200) >= bound


def test_fluid_model_oscillates_around_capacity():
    senders = [FluidSender(name=f"s{i}") for i in range(4)]
    model = AimdFluidModel(1e6, senders)
    model.run(300)
    # After convergence the link alternates between congested and not.
    tail = model.congested_history[-50:]
    assert any(tail) and not all(tail)


def test_fluid_model_idle_sender_not_rewarded():
    """A sender with no demand must not accumulate a huge rate limit."""
    active = FluidSender(name="active")
    idle = FluidSender(name="idle", demand_fn=lambda i: 0.0)
    model = AimdFluidModel(1e6, [active, idle])
    model.run(200)
    assert idle.rate_limit_bps <= active.rate_limit_bps


def test_fluid_model_rejects_bad_capacity():
    with pytest.raises(ValueError):
        AimdFluidModel(0.0, [FluidSender(name="s")])


def test_legitimate_and_malicious_partitions():
    good = FluidSender(name="g")
    bad = FluidSender(name="b", is_legitimate=False)
    model = AimdFluidModel(1e6, [good, bad])
    assert model.legitimate_senders() == [good]
    assert model.malicious_senders() == [bad]
